//! Deterministic fan-out for statistically independent simulations.
//!
//! The campaign layer replays thousands of independent discrete-event
//! simulations (one per random mix); per Eyerman–Eeckhout's STP/ANTT
//! methodology those replays share nothing, so they can run on as many
//! cores as the host offers **without** touching the engine's
//! single-threaded determinism guarantees. This module provides the one
//! primitive that makes that safe:
//!
//! [`par_map_indexed`] — a scoped, work-stealing-free thread pool that maps
//! a closure over a slice and commits results **in index order**. Workers
//! claim indices from a shared atomic counter (self-scheduling, so an
//! expensive item never stalls the queue behind it), but the output vector
//! is assembled by index, so the caller observes exactly the same `Vec` no
//! matter how many workers ran or in what order they finished. Determinism
//! therefore reduces to the closure being a pure function of its index —
//! which the campaign layer guarantees by deriving every replay's RNG seed
//! from `base_seed + index`.
//!
//! Two further primitives serve *intra*-simulation parallelism (DESIGN.md
//! §17), where one giant engine step fans independent per-shard work over
//! the same worker budget:
//!
//! * [`par_for_shards`] — the shard fan-out: like [`par_map_indexed`] but
//!   with caller-owned output slots and **per-worker scratch arenas** that
//!   persist across calls, so a refresh running every simulation tick
//!   allocates nothing at steady state;
//! * [`par_for_chunks_mut`] — a statically partitioned mutable sweep over
//!   a slice (contiguous chunks, one per worker) for state that must be
//!   mutated in place, such as the monitor's per-node windows.
//!
//! Built on `std::thread::scope` only: no external dependencies, no
//! channels, no work stealing (stealing reorders *starts*, which is
//! harmless, but a fixed claim order keeps scheduling easy to reason
//! about). Worker panics are re-raised on the calling thread.
//!
//! The worker count defaults to [`available_workers`], which honours the
//! `SPARK_MOE_THREADS` environment variable so CI and benchmarks can pin
//! or oversubscribe the pool.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the default worker count.
pub const THREADS_ENV: &str = "SPARK_MOE_THREADS";

/// Number of workers campaigns use by default: `SPARK_MOE_THREADS` when set
/// to a positive integer, otherwise the host's available parallelism
/// (falling back to 1 when that cannot be determined).
#[must_use]
pub fn available_workers() -> usize {
    std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Maps `f` over `items` on up to `workers` scoped threads, returning the
/// results in index order.
///
/// Guarantees:
///
/// * **Index-ordered output** — `result[i] == f(i, &items[i])` regardless
///   of worker count or completion order.
/// * **No work stealing** — each worker claims the next unclaimed index
///   from one atomic counter; an item is computed by exactly one worker.
/// * **Panic propagation** — a panicking closure aborts the whole map and
///   re-raises the payload on the caller's thread.
///
/// With `workers <= 1` (or fewer than two items) everything runs inline on
/// the calling thread — the base case the determinism tests compare
/// against.
///
/// # Examples
///
/// ```
/// use simkit::par::par_map_indexed;
/// let squares = par_map_indexed(&[1u64, 2, 3, 4], 4, |i, &x| (i as u64, x * x));
/// assert_eq!(squares, vec![(0, 1), (1, 4), (2, 9), (3, 16)]);
/// ```
pub fn par_map_indexed<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = workers.clamp(1, items.len().max(1));
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let joined: Vec<std::thread::Result<Vec<(usize, R)>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut claimed = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        claimed.push((i, f(i, &items[i])));
                    }
                    claimed
                })
            })
            .collect();
        handles
            .into_iter()
            .map(std::thread::ScopedJoinHandle::join)
            .collect()
    });

    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for worker_results in joined {
        match worker_results {
            Ok(pairs) => {
                for (i, r) in pairs {
                    debug_assert!(slots[i].is_none(), "index {i} computed twice");
                    slots[i] = Some(r);
                }
            }
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index claimed exactly once"))
        .collect()
}

/// Maps `f` over `items` on up to `workers` scoped threads into
/// caller-owned storage, giving each worker a reusable scratch arena.
///
/// This is the intra-simulation twin of [`par_map_indexed`], shaped for
/// hot loops that run every engine step (DESIGN.md §17):
///
/// * **Caller-owned output** — results land in `out[i] = Some(f(i, ..))`;
///   `out` is cleared and resized here, so a caller that keeps the `Vec`
///   around pays no allocation at steady state.
/// * **Per-worker scratch arenas** — `scratch` is grown to `workers`
///   entries with `make_scratch` and each worker borrows exactly one
///   entry for the whole call. Arenas persist across calls, so buffers
///   hoisted out of the serial loop stay hoisted under parallelism.
/// * **Index-ordered claiming** — workers claim ascending indices from
///   one atomic counter; each item is computed by exactly one worker.
/// * **Panic propagation** — a panicking closure re-raises on the caller.
///
/// With `workers <= 1` (or fewer than two items) everything runs inline
/// on the calling thread using `scratch[0]` — the serial base case the
/// determinism suites compare against. Determinism of the *values*
/// reduces to `f` being a pure function of `(index, item, scratch)` with
/// scratch state it fully overwrites — exactly the contract of the
/// engine's per-shard refresh.
///
/// # Examples
///
/// ```
/// use simkit::par::par_for_shards;
/// let items = [3u64, 1, 4, 1, 5];
/// let mut scratch: Vec<Vec<u64>> = Vec::new();
/// let mut out = Vec::new();
/// par_for_shards(&items, 4, &mut scratch, Vec::new, &mut out, |i, &x, buf| {
///     buf.clear();
///     buf.extend(0..x);
///     (i as u64) * 100 + buf.iter().sum::<u64>()
/// });
/// let got: Vec<u64> = out.iter().flatten().copied().collect();
/// assert_eq!(got, vec![3, 100, 206, 300, 410]);
/// ```
pub fn par_for_shards<T, R, S, M, F>(
    items: &[T],
    workers: usize,
    scratch: &mut Vec<S>,
    make_scratch: M,
    out: &mut Vec<Option<R>>,
    f: F,
) where
    T: Sync,
    R: Send,
    S: Send,
    M: FnMut() -> S,
    F: Fn(usize, &T, &mut S) -> R + Sync,
{
    let workers = workers.clamp(1, items.len().max(1));
    if scratch.len() < workers {
        scratch.resize_with(workers, make_scratch);
    }
    out.clear();
    out.resize_with(items.len(), || None);

    if workers <= 1 {
        let Some(arena) = scratch.first_mut() else {
            return; // workers >= 1 forces scratch.len() >= 1; unreachable
        };
        for (i, (item, slot)) in items.iter().zip(out.iter_mut()).enumerate() {
            *slot = Some(f(i, item, arena));
        }
        return;
    }

    let next = AtomicUsize::new(0);
    let next = &next;
    let f = &f;
    let joined: Vec<std::thread::Result<Vec<(usize, R)>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = scratch
            .iter_mut()
            .take(workers)
            .map(|arena| {
                scope.spawn(move || {
                    let mut claimed = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        claimed.push((i, f(i, &items[i], arena)));
                    }
                    claimed
                })
            })
            .collect();
        handles
            .into_iter()
            .map(std::thread::ScopedJoinHandle::join)
            .collect()
    });

    for worker_results in joined {
        match worker_results {
            Ok(pairs) => {
                for (i, r) in pairs {
                    debug_assert!(out[i].is_none(), "index {i} computed twice");
                    out[i] = Some(r);
                }
            }
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
}

/// Runs `f(i, &mut items[i])` for every item, partitioning `items` into
/// up to `workers` contiguous chunks — one scoped thread per chunk.
///
/// Unlike the claiming primitives this requires only `T: Send`, because
/// each worker owns its chunk exclusively (`chunks_mut`): no shared
/// reads, no `Sync` bound. That makes it usable on interior-mutability
/// state like the monitor's memoized `NodeWindow`s. The closure receives
/// the item's **global** index, so per-item work can stay a pure function
/// of `(index, item)`; with that, partitioning cannot change any item's
/// bits — only which thread computes them.
///
/// With `workers <= 1` (or fewer than two items) the loop runs inline.
/// Worker panics re-raise on the calling thread.
///
/// # Examples
///
/// ```
/// use simkit::par::par_for_chunks_mut;
/// let mut cells = vec![0u64; 10];
/// par_for_chunks_mut(&mut cells, 4, |i, c| *c = i as u64 * 2);
/// assert_eq!(cells[9], 18);
/// ```
pub fn par_for_chunks_mut<T, F>(items: &mut [T], workers: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let workers = workers.clamp(1, items.len().max(1));
    if workers <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }

    // Static partition: ceil(len / workers) per chunk, so every worker
    // gets one contiguous run and global indices are offset + position.
    let len = items.len();
    let chunk = len.div_ceil(workers);
    let joined: Vec<std::thread::Result<()>> = std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks_mut(chunk)
            .enumerate()
            .map(|(c, chunk_items)| {
                let f = &f;
                scope.spawn(move || {
                    let base = c * chunk;
                    for (off, item) in chunk_items.iter_mut().enumerate() {
                        f(base + off, item);
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(std::thread::ScopedJoinHandle::join)
            .collect()
    });
    for result in joined {
        if let Err(payload) = result {
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_index_order_for_any_worker_count() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for workers in [1, 2, 3, 8, 64, 200] {
            let got = par_map_indexed(&items, workers, |_, &x| x * x + 1);
            assert_eq!(got, expect, "workers = {workers}");
        }
    }

    #[test]
    fn closure_sees_matching_index_and_item() {
        let items: Vec<usize> = (0..50).collect();
        let got = par_map_indexed(&items, 4, |i, &x| {
            assert_eq!(i, x);
            i
        });
        assert_eq!(got, items);
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_indexed(&empty, 8, |_, &x| x).is_empty());
        assert_eq!(par_map_indexed(&[7u32], 8, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn every_item_computed_exactly_once() {
        use std::sync::atomic::AtomicU32;
        let counters: Vec<AtomicU32> = (0..64).map(|_| AtomicU32::new(0)).collect();
        let items: Vec<usize> = (0..64).collect();
        par_map_indexed(&items, 8, |i, _| {
            counters[i].fetch_add(1, Ordering::SeqCst);
        });
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "item {i}");
        }
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..16).collect();
        let result = std::panic::catch_unwind(|| {
            par_map_indexed(&items, 4, |i, _| {
                assert!(i != 9, "boom at 9");
                i
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn for_shards_matches_serial_for_any_worker_count() {
        let items: Vec<u64> = (0..131).collect();
        let expect: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| x * 3 + i as u64)
            .collect();
        for workers in [1, 2, 3, 8, 64, 200] {
            let mut scratch: Vec<u64> = Vec::new();
            let mut out = Vec::new();
            par_for_shards(
                &items,
                workers,
                &mut scratch,
                || 0u64,
                &mut out,
                |i, &x, acc| {
                    *acc += 1; // arena state must not leak into results
                    x * 3 + i as u64
                },
            );
            let got: Vec<u64> = out.iter().map(|s| s.expect("slot filled")).collect();
            assert_eq!(got, expect, "workers = {workers}");
        }
    }

    #[test]
    fn for_shards_reuses_scratch_and_out_capacity() {
        let items: Vec<u32> = (0..40).collect();
        let mut scratch: Vec<Vec<u32>> = Vec::new();
        let mut out: Vec<Option<u32>> = Vec::new();
        par_for_shards(&items, 4, &mut scratch, Vec::new, &mut out, |_, &x, buf| {
            buf.clear();
            buf.push(x);
            buf[0] + 1
        });
        assert_eq!(scratch.len(), 4, "one arena per worker");
        let out_cap = out.capacity();
        par_for_shards(&items, 4, &mut scratch, Vec::new, &mut out, |_, &x, _| x);
        assert_eq!(scratch.len(), 4, "arenas persist across calls");
        assert_eq!(out.capacity(), out_cap, "output storage is reused");
        assert_eq!(out[39], Some(39));
    }

    #[test]
    fn for_shards_computes_every_item_exactly_once() {
        use std::sync::atomic::AtomicU32;
        let counters: Vec<AtomicU32> = (0..64).map(|_| AtomicU32::new(0)).collect();
        let items: Vec<usize> = (0..64).collect();
        let mut scratch: Vec<()> = Vec::new();
        let mut out: Vec<Option<()>> = Vec::new();
        par_for_shards(
            &items,
            8,
            &mut scratch,
            || (),
            &mut out,
            |i, _, ()| {
                counters[i].fetch_add(1, Ordering::SeqCst);
            },
        );
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "item {i}");
        }
    }

    #[test]
    fn for_shards_empty_input_and_panic_propagation() {
        let empty: Vec<u32> = Vec::new();
        let mut scratch: Vec<()> = Vec::new();
        let mut out: Vec<Option<u32>> = vec![Some(9)];
        par_for_shards(&empty, 8, &mut scratch, || (), &mut out, |_, &x, ()| x);
        assert!(out.is_empty(), "stale slots cleared");

        let items: Vec<u32> = (0..16).collect();
        let result = std::panic::catch_unwind(move || {
            let mut scratch: Vec<()> = Vec::new();
            let mut out: Vec<Option<u32>> = Vec::new();
            par_for_shards(
                &items,
                4,
                &mut scratch,
                || (),
                &mut out,
                |i, &x, ()| {
                    assert!(i != 9, "boom at 9");
                    x
                },
            );
        });
        assert!(result.is_err());
    }

    #[test]
    fn chunks_mut_matches_serial_for_any_worker_count() {
        for workers in [1, 2, 3, 7, 16, 100] {
            let mut cells: Vec<u64> = vec![0; 97];
            par_for_chunks_mut(&mut cells, workers, |i, c| *c = (i as u64) * 7 + 1);
            let expect: Vec<u64> = (0..97).map(|i| i * 7 + 1).collect();
            assert_eq!(cells, expect, "workers = {workers}");
        }
    }

    #[test]
    fn chunks_mut_handles_empty_single_and_panics() {
        let mut empty: Vec<u32> = Vec::new();
        par_for_chunks_mut(&mut empty, 8, |_, _| {});
        let mut one = vec![5u32];
        par_for_chunks_mut(&mut one, 8, |i, c| *c += i as u32 + 1);
        assert_eq!(one, vec![6]);

        let result = std::panic::catch_unwind(|| {
            let mut cells: Vec<u32> = vec![0; 32];
            par_for_chunks_mut(&mut cells, 4, |i, _| assert!(i != 17, "boom at 17"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn env_override_controls_worker_count() {
        // Serialized with a lock-free dance is overkill for a single test
        // binary; tests in this module do not otherwise read the variable.
        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(available_workers(), 3);
        std::env::set_var(THREADS_ENV, "0");
        assert!(available_workers() >= 1, "zero falls back to detection");
        std::env::set_var(THREADS_ENV, "not-a-number");
        assert!(available_workers() >= 1);
        std::env::remove_var(THREADS_ENV);
        assert!(available_workers() >= 1);
    }
}
