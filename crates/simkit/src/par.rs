//! Deterministic fan-out for statistically independent simulations.
//!
//! The campaign layer replays thousands of independent discrete-event
//! simulations (one per random mix); per Eyerman–Eeckhout's STP/ANTT
//! methodology those replays share nothing, so they can run on as many
//! cores as the host offers **without** touching the engine's
//! single-threaded determinism guarantees. This module provides the one
//! primitive that makes that safe:
//!
//! [`par_map_indexed`] — a scoped, work-stealing-free thread pool that maps
//! a closure over a slice and commits results **in index order**. Workers
//! claim indices from a shared atomic counter (self-scheduling, so an
//! expensive item never stalls the queue behind it), but the output vector
//! is assembled by index, so the caller observes exactly the same `Vec` no
//! matter how many workers ran or in what order they finished. Determinism
//! therefore reduces to the closure being a pure function of its index —
//! which the campaign layer guarantees by deriving every replay's RNG seed
//! from `base_seed + index`.
//!
//! Built on `std::thread::scope` only: no external dependencies, no
//! channels, no work stealing (stealing reorders *starts*, which is
//! harmless, but a fixed claim order keeps scheduling easy to reason
//! about). Worker panics are re-raised on the calling thread.
//!
//! The worker count defaults to [`available_workers`], which honours the
//! `SPARK_MOE_THREADS` environment variable so CI and benchmarks can pin
//! or oversubscribe the pool.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the default worker count.
pub const THREADS_ENV: &str = "SPARK_MOE_THREADS";

/// Number of workers campaigns use by default: `SPARK_MOE_THREADS` when set
/// to a positive integer, otherwise the host's available parallelism
/// (falling back to 1 when that cannot be determined).
#[must_use]
pub fn available_workers() -> usize {
    std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Maps `f` over `items` on up to `workers` scoped threads, returning the
/// results in index order.
///
/// Guarantees:
///
/// * **Index-ordered output** — `result[i] == f(i, &items[i])` regardless
///   of worker count or completion order.
/// * **No work stealing** — each worker claims the next unclaimed index
///   from one atomic counter; an item is computed by exactly one worker.
/// * **Panic propagation** — a panicking closure aborts the whole map and
///   re-raises the payload on the caller's thread.
///
/// With `workers <= 1` (or fewer than two items) everything runs inline on
/// the calling thread — the base case the determinism tests compare
/// against.
///
/// # Examples
///
/// ```
/// use simkit::par::par_map_indexed;
/// let squares = par_map_indexed(&[1u64, 2, 3, 4], 4, |i, &x| (i as u64, x * x));
/// assert_eq!(squares, vec![(0, 1), (1, 4), (2, 9), (3, 16)]);
/// ```
pub fn par_map_indexed<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = workers.clamp(1, items.len().max(1));
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let joined: Vec<std::thread::Result<Vec<(usize, R)>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut claimed = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        claimed.push((i, f(i, &items[i])));
                    }
                    claimed
                })
            })
            .collect();
        handles
            .into_iter()
            .map(std::thread::ScopedJoinHandle::join)
            .collect()
    });

    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for worker_results in joined {
        match worker_results {
            Ok(pairs) => {
                for (i, r) in pairs {
                    debug_assert!(slots[i].is_none(), "index {i} computed twice");
                    slots[i] = Some(r);
                }
            }
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_index_order_for_any_worker_count() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for workers in [1, 2, 3, 8, 64, 200] {
            let got = par_map_indexed(&items, workers, |_, &x| x * x + 1);
            assert_eq!(got, expect, "workers = {workers}");
        }
    }

    #[test]
    fn closure_sees_matching_index_and_item() {
        let items: Vec<usize> = (0..50).collect();
        let got = par_map_indexed(&items, 4, |i, &x| {
            assert_eq!(i, x);
            i
        });
        assert_eq!(got, items);
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_indexed(&empty, 8, |_, &x| x).is_empty());
        assert_eq!(par_map_indexed(&[7u32], 8, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn every_item_computed_exactly_once() {
        use std::sync::atomic::AtomicU32;
        let counters: Vec<AtomicU32> = (0..64).map(|_| AtomicU32::new(0)).collect();
        let items: Vec<usize> = (0..64).collect();
        par_map_indexed(&items, 8, |i, _| {
            counters[i].fetch_add(1, Ordering::SeqCst);
        });
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "item {i}");
        }
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..16).collect();
        let result = std::panic::catch_unwind(|| {
            par_map_indexed(&items, 4, |i, _| {
                assert!(i != 9, "boom at 9");
                i
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn env_override_controls_worker_count() {
        // Serialized with a lock-free dance is overkill for a single test
        // binary; tests in this module do not otherwise read the variable.
        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(available_workers(), 3);
        std::env::set_var(THREADS_ENV, "0");
        assert!(available_workers() >= 1, "zero falls back to detection");
        std::env::set_var(THREADS_ENV, "not-a-number");
        assert!(available_workers() >= 1);
        std::env::remove_var(THREADS_ENV);
        assert!(available_workers() >= 1);
    }
}
