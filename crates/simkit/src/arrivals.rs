//! Deterministic open-system arrival processes: seeded, pre-drawn plans.
//!
//! An [`ArrivalPlan`] is the open-system twin of
//! [`FaultPlan`](crate::faults::FaultPlan): a pre-drawn, time-sorted list
//! of job arrivals derived entirely from a `(seed, config)` pair. The
//! same pair always yields the same plan, bit for bit, regardless of how
//! the consuming scheduler is configured or how many worker threads later
//! replay it. Drawing the whole arrival stream up front — instead of
//! sampling inter-arrival gaps while the simulation runs — is what keeps
//! open-system campaigns schedule-independent: admission control, load
//! shedding and backpressure all change *when jobs start*, never *when
//! jobs arrive*.
//!
//! Three processes cover the regimes a multi-tenant scheduler faces:
//!
//! * **Poisson** — memoryless arrivals at a constant rate, the classic
//!   open-system baseline;
//! * **bursty / diurnal** — a sinusoidally modulated rate between a base
//!   and a peak (one period ≈ one "day"), realised by thinning a Poisson
//!   stream drawn at the peak rate, so bursts are part of the plan rather
//!   than emergent;
//! * **trace-driven** — explicit `(time, tenant, class)` triples replayed
//!   verbatim ([`ArrivalPlan::from_trace`]).
//!
//! Each arrival also carries a *tenant* index (for weighted fair queueing
//! downstream) and a *job class* index (an opaque handle the consumer maps
//! to a concrete workload — this crate stays agnostic of any catalog).

use crate::rng::SimRng;
use serde::{Deserialize, Serialize};

/// Why a trace was rejected by [`ArrivalPlan::try_from_trace`].
///
/// A broken trace — a NaN timestamp, a negative arrival time, or events
/// out of order — would otherwise flow silently into an [`ArrivalPlan`]
/// and surface much later as a wedged or nonsensical campaign; the typed
/// error pins the bad input at the boundary instead.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalError {
    /// An event's timestamp is NaN (event index given).
    NanTimestamp(usize),
    /// An event's timestamp is negative or non-finite (event index and
    /// offending value given).
    NegativeTimestamp(usize, f64),
    /// An event lands before its predecessor (index of the later event,
    /// its timestamp, and the predecessor's timestamp).
    NonMonotonic(usize, f64, f64),
    /// The horizon is NaN, non-finite, or negative.
    BadHorizon(f64),
    /// An event lands at or beyond the stated horizon (event index and
    /// timestamp given).
    BeyondHorizon(usize, f64),
}

impl std::fmt::Display for ArrivalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ArrivalError::NanTimestamp(i) => {
                write!(f, "trace event {i} has a NaN timestamp")
            }
            ArrivalError::NegativeTimestamp(i, t) => {
                write!(
                    f,
                    "trace event {i} has a negative or non-finite timestamp {t}"
                )
            }
            ArrivalError::NonMonotonic(i, t, prev) => write!(
                f,
                "trace event {i} at t={t} lands before its predecessor at t={prev}"
            ),
            ArrivalError::BadHorizon(h) => {
                write!(f, "trace horizon {h} is not a finite non-negative number")
            }
            ArrivalError::BeyondHorizon(i, t) => {
                write!(f, "trace event {i} at t={t} lands at or beyond the horizon")
            }
        }
    }
}

impl std::error::Error for ArrivalError {}

/// The stochastic process arrivals are drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Constant-rate memoryless arrivals.
    Poisson {
        /// Mean arrivals per second.
        rate_per_sec: f64,
    },
    /// Diurnal modulation: the instantaneous rate swings sinusoidally
    /// between `base_rate_per_sec` and `peak_rate_per_sec` with the given
    /// period, realised by thinning a peak-rate Poisson stream.
    Bursty {
        /// Trough arrival rate, per second.
        base_rate_per_sec: f64,
        /// Crest arrival rate, per second (must be ≥ the base rate).
        peak_rate_per_sec: f64,
        /// Length of one modulation cycle, seconds.
        period_secs: f64,
    },
}

/// Shape of an arrival campaign: the process, its horizon, and how many
/// tenants / job classes arrivals are spread across.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrivalPlanConfig {
    /// The arrival process.
    pub process: ArrivalProcess,
    /// Arrivals are drawn in `[0, horizon_secs)`.
    pub horizon_secs: f64,
    /// Number of tenants arrivals are attributed to (uniformly).
    pub tenants: usize,
    /// Number of job classes arrivals are drawn from (uniformly). The
    /// consumer maps a class index to a concrete workload.
    pub job_classes: usize,
    /// Hard cap on the number of arrivals (0 = unbounded): lets capped
    /// smoke runs reuse a production config without shortening the
    /// horizon's rate profile.
    pub max_jobs: usize,
}

impl Default for ArrivalPlanConfig {
    fn default() -> Self {
        ArrivalPlanConfig {
            process: ArrivalProcess::Poisson { rate_per_sec: 0.0 },
            horizon_secs: 3_600.0,
            tenants: 1,
            job_classes: 1,
            max_jobs: 0,
        }
    }
}

/// One planned job arrival.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrivalEvent {
    /// Simulated time the job lands, seconds.
    pub at_secs: f64,
    /// Tenant the job belongs to.
    pub tenant: usize,
    /// Opaque job-class index (consumer-defined meaning).
    pub job_class: usize,
}

/// A seeded, replayable schedule of job arrivals, sorted by time.
///
/// # Examples
///
/// ```
/// use simkit::arrivals::{ArrivalPlan, ArrivalPlanConfig, ArrivalProcess};
///
/// let cfg = ArrivalPlanConfig {
///     process: ArrivalProcess::Poisson { rate_per_sec: 0.01 },
///     horizon_secs: 10_000.0,
///     tenants: 3,
///     job_classes: 8,
///     ..Default::default()
/// };
/// let a = ArrivalPlan::generate(7, &cfg);
/// let b = ArrivalPlan::generate(7, &cfg);
/// assert_eq!(a.events(), b.events(), "same seed, same plan");
/// assert!(!a.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ArrivalPlan {
    events: Vec<ArrivalEvent>,
    horizon_secs: f64,
}

impl ArrivalPlan {
    /// An empty plan (a closed system: nothing ever arrives).
    #[must_use]
    pub fn none() -> Self {
        ArrivalPlan::default()
    }

    /// Draws a plan deterministically from `seed` and `config`.
    ///
    /// Poisson streams accumulate exponential inter-arrival gaps; bursty
    /// streams draw candidates at the peak rate and keep each with
    /// probability `rate(t) / peak` (thinning), which realises the exact
    /// inhomogeneous process without any time-stepping. Tenant and class
    /// are drawn per kept arrival. Events come out time-sorted by
    /// construction, so the plan — and everything downstream of it — is
    /// bit-for-bit reproducible.
    ///
    /// # Panics
    ///
    /// Panics on negative rates, a bursty peak below its base, or a
    /// non-positive horizon/period.
    #[must_use]
    pub fn generate(seed: u64, config: &ArrivalPlanConfig) -> Self {
        assert!(
            config.horizon_secs > 0.0 && config.horizon_secs.is_finite(),
            "arrival horizon must be positive and finite"
        );
        assert!(config.tenants > 0, "need at least one tenant");
        assert!(config.job_classes > 0, "need at least one job class");
        let mut rng = SimRng::seed_from(seed ^ 0xA441_7A15_5EED_0000);
        let mut events = Vec::new();
        let cap = if config.max_jobs == 0 {
            usize::MAX
        } else {
            config.max_jobs
        };

        let envelope_rate = match config.process {
            ArrivalProcess::Poisson { rate_per_sec } => {
                assert!(
                    rate_per_sec >= 0.0 && rate_per_sec.is_finite(),
                    "arrival rate must be a finite non-negative number"
                );
                rate_per_sec
            }
            ArrivalProcess::Bursty {
                base_rate_per_sec,
                peak_rate_per_sec,
                period_secs,
            } => {
                assert!(
                    base_rate_per_sec >= 0.0 && base_rate_per_sec.is_finite(),
                    "base rate must be a finite non-negative number"
                );
                assert!(
                    peak_rate_per_sec >= base_rate_per_sec && peak_rate_per_sec.is_finite(),
                    "peak rate must be finite and >= the base rate"
                );
                assert!(period_secs > 0.0, "diurnal period must be positive");
                peak_rate_per_sec
            }
        };
        if envelope_rate == 0.0 {
            return ArrivalPlan {
                events,
                horizon_secs: config.horizon_secs,
            };
        }

        let mut t = 0.0f64;
        while events.len() < cap {
            t += rng.exponential(envelope_rate);
            if t >= config.horizon_secs {
                break;
            }
            let keep = match config.process {
                ArrivalProcess::Poisson { .. } => true,
                ArrivalProcess::Bursty {
                    base_rate_per_sec,
                    peak_rate_per_sec,
                    period_secs,
                } => {
                    // Sinusoid between base and peak, crest at mid-period.
                    let phase = (t / period_secs) * std::f64::consts::TAU;
                    let rate = base_rate_per_sec
                        + (peak_rate_per_sec - base_rate_per_sec) * 0.5 * (1.0 - phase.cos());
                    rng.unit() < rate / peak_rate_per_sec
                }
            };
            if !keep {
                continue;
            }
            events.push(ArrivalEvent {
                at_secs: t,
                tenant: rng.uniform_usize(0, config.tenants - 1),
                job_class: rng.uniform_usize(0, config.job_classes - 1),
            });
        }
        ArrivalPlan {
            events,
            horizon_secs: config.horizon_secs,
        }
    }

    /// A trace-driven plan: the given events replayed verbatim (stably
    /// sorted by time, so same-instant arrivals keep trace order).
    ///
    /// Accepts the trace as-is; use [`ArrivalPlan::try_from_trace`] when
    /// the trace comes from outside (a file, a fuzzer, a shrunk episode)
    /// and malformed timestamps must be rejected rather than sorted into
    /// something that merely *looks* valid.
    #[must_use]
    pub fn from_trace(mut events: Vec<ArrivalEvent>, horizon_secs: f64) -> Self {
        events.sort_by(|a, b| a.at_secs.total_cmp(&b.at_secs));
        ArrivalPlan {
            events,
            horizon_secs,
        }
    }

    /// A validated trace-driven plan: rejects NaN, negative, non-finite,
    /// out-of-order, or beyond-horizon timestamps with a typed
    /// [`ArrivalError`] instead of silently producing a broken plan.
    ///
    /// Unlike [`ArrivalPlan::from_trace`] this does *not* sort: a
    /// non-monotonic trace is evidence of a corrupted input, and sorting
    /// would paper over it. A `horizon_secs` of `0.0` is accepted only
    /// when every event lands at `t = 0` (a batch-style trace); any other
    /// event at or beyond the horizon is rejected via
    /// [`ArrivalError::BeyondHorizon`].
    pub fn try_from_trace(
        events: Vec<ArrivalEvent>,
        horizon_secs: f64,
    ) -> Result<Self, ArrivalError> {
        if !horizon_secs.is_finite() || horizon_secs < 0.0 {
            return Err(ArrivalError::BadHorizon(horizon_secs));
        }
        let mut prev = 0.0f64;
        for (i, e) in events.iter().enumerate() {
            if e.at_secs.is_nan() {
                return Err(ArrivalError::NanTimestamp(i));
            }
            if e.at_secs < 0.0 || !e.at_secs.is_finite() {
                return Err(ArrivalError::NegativeTimestamp(i, e.at_secs));
            }
            if e.at_secs < prev {
                return Err(ArrivalError::NonMonotonic(i, e.at_secs, prev));
            }
            // A zero horizon means "batch at t=0": only t=0 events fit.
            if e.at_secs >= horizon_secs && !(horizon_secs == 0.0 && e.at_secs == 0.0) {
                return Err(ArrivalError::BeyondHorizon(i, e.at_secs));
            }
            prev = e.at_secs;
        }
        Ok(ArrivalPlan {
            events,
            horizon_secs,
        })
    }

    /// A degenerate "batch" plan: every job lands at `t = 0`, in order.
    /// With admission control disabled this reproduces the closed-system
    /// batch path exactly — the identity the open-system invariant tests
    /// pin.
    #[must_use]
    pub fn batch(jobs: &[(usize, usize)]) -> Self {
        ArrivalPlan {
            events: jobs
                .iter()
                .map(|&(tenant, job_class)| ArrivalEvent {
                    at_secs: 0.0,
                    tenant,
                    job_class,
                })
                .collect(),
            horizon_secs: 0.0,
        }
    }

    /// The planned arrivals in time order.
    #[must_use]
    pub fn events(&self) -> &[ArrivalEvent] {
        &self.events
    }

    /// Whether nothing ever arrives.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of planned arrivals.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The horizon the plan was drawn over, seconds.
    #[must_use]
    pub fn horizon_secs(&self) -> f64 {
        self.horizon_secs
    }

    /// Mean arrival rate actually realised by the plan, per second.
    #[must_use]
    pub fn realized_rate_per_sec(&self) -> f64 {
        if self.horizon_secs > 0.0 {
            self.events.len() as f64 / self.horizon_secs
        } else {
            0.0
        }
    }

    /// A cursor over the plan for consumption during a replay.
    #[must_use]
    pub fn cursor(&self) -> ArrivalCursor<'_> {
        ArrivalCursor {
            events: &self.events,
            next: 0,
        }
    }
}

/// Consumes an [`ArrivalPlan`] front to back during a simulation.
#[derive(Debug, Clone)]
pub struct ArrivalCursor<'a> {
    events: &'a [ArrivalEvent],
    next: usize,
}

impl<'a> ArrivalCursor<'a> {
    /// Arrival time of the next undelivered job, if any.
    #[must_use]
    pub fn next_at(&self) -> Option<f64> {
        self.events.get(self.next).map(|e| e.at_secs)
    }

    /// Pops the next arrival if it is due at or before `now_secs`.
    pub fn pop_due(&mut self, now_secs: f64) -> Option<&'a ArrivalEvent> {
        let event = self.events.get(self.next)?;
        if event.at_secs <= now_secs {
            self.next += 1;
            Some(event)
        } else {
            None
        }
    }

    /// Number of arrivals not yet delivered.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.events.len() - self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poisson_cfg(rate: f64) -> ArrivalPlanConfig {
        ArrivalPlanConfig {
            process: ArrivalProcess::Poisson { rate_per_sec: rate },
            horizon_secs: 100_000.0,
            tenants: 4,
            job_classes: 10,
            max_jobs: 0,
        }
    }

    #[test]
    fn zero_rate_is_empty() {
        let plan = ArrivalPlan::generate(1, &poisson_cfg(0.0));
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
        assert_eq!(plan.cursor().next_at(), None);
        assert_eq!(plan.realized_rate_per_sec(), 0.0);
    }

    #[test]
    fn same_seed_same_plan_bitwise() {
        let a = ArrivalPlan::generate(9, &poisson_cfg(0.01));
        let b = ArrivalPlan::generate(9, &poisson_cfg(0.01));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.events().iter().zip(b.events()) {
            assert_eq!(x.at_secs.to_bits(), y.at_secs.to_bits());
            assert_eq!(x.tenant, y.tenant);
            assert_eq!(x.job_class, y.job_class);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = ArrivalPlan::generate(1, &poisson_cfg(0.01));
        let b = ArrivalPlan::generate(2, &poisson_cfg(0.01));
        assert_ne!(a.events(), b.events());
    }

    #[test]
    fn poisson_rate_is_roughly_honoured() {
        let plan = ArrivalPlan::generate(3, &poisson_cfg(0.02));
        let realized = plan.realized_rate_per_sec();
        assert!(
            (realized - 0.02).abs() < 0.004,
            "realized rate {realized} far from 0.02"
        );
        let mut last = 0.0;
        for e in plan.events() {
            assert!(e.at_secs >= last, "arrivals must be time-sorted");
            assert!(e.at_secs < 100_000.0);
            assert!(e.tenant < 4);
            assert!(e.job_class < 10);
            last = e.at_secs;
        }
    }

    #[test]
    fn bursty_thinning_stays_between_base_and_peak() {
        let cfg = ArrivalPlanConfig {
            process: ArrivalProcess::Bursty {
                base_rate_per_sec: 0.002,
                peak_rate_per_sec: 0.02,
                period_secs: 20_000.0,
            },
            ..poisson_cfg(0.0)
        };
        let plan = ArrivalPlan::generate(5, &cfg);
        let realized = plan.realized_rate_per_sec();
        // Mean of the sinusoid is (base + peak) / 2 = 0.011.
        assert!(realized > 0.002 && realized < 0.02, "realized {realized}");
        // Crest halves (mid-period) should be denser than trough halves.
        let period = 20_000.0;
        let (mut crest, mut trough) = (0usize, 0usize);
        for e in plan.events() {
            let phase = (e.at_secs / period).fract();
            if (0.25..0.75).contains(&phase) {
                crest += 1;
            } else {
                trough += 1;
            }
        }
        assert!(crest > trough, "crest {crest} vs trough {trough}");
    }

    #[test]
    fn max_jobs_caps_the_plan() {
        let cfg = ArrivalPlanConfig {
            max_jobs: 7,
            ..poisson_cfg(0.05)
        };
        let plan = ArrivalPlan::generate(11, &cfg);
        assert_eq!(plan.len(), 7);
        // The capped plan is a prefix of the uncapped one.
        let full = ArrivalPlan::generate(11, &poisson_cfg(0.05));
        assert_eq!(plan.events(), &full.events()[..7]);
    }

    #[test]
    fn trace_plans_sort_stably() {
        let plan = ArrivalPlan::from_trace(
            vec![
                ArrivalEvent {
                    at_secs: 5.0,
                    tenant: 0,
                    job_class: 1,
                },
                ArrivalEvent {
                    at_secs: 1.0,
                    tenant: 1,
                    job_class: 2,
                },
                ArrivalEvent {
                    at_secs: 5.0,
                    tenant: 2,
                    job_class: 3,
                },
            ],
            10.0,
        );
        assert_eq!(plan.events()[0].tenant, 1);
        assert_eq!(plan.events()[1].tenant, 0, "ties keep trace order");
        assert_eq!(plan.events()[2].tenant, 2);
        assert_eq!(plan.horizon_secs(), 10.0);
    }

    #[test]
    fn batch_plans_land_everything_at_zero() {
        let plan = ArrivalPlan::batch(&[(0, 3), (1, 4)]);
        assert_eq!(plan.len(), 2);
        assert!(plan.events().iter().all(|e| e.at_secs == 0.0));
        assert_eq!(plan.events()[0].job_class, 3);
        assert_eq!(plan.events()[1].job_class, 4);
    }

    #[test]
    fn cursor_pops_in_order_and_respects_now() {
        let plan = ArrivalPlan::generate(5, &poisson_cfg(0.01));
        let mut cursor = plan.cursor();
        assert_eq!(cursor.remaining(), plan.len());
        let first_at = cursor.next_at().unwrap();
        assert!(cursor.pop_due(first_at - 1e-9).is_none());
        let e = cursor.pop_due(first_at).unwrap();
        assert_eq!(e.at_secs, first_at);
        let mut popped = 1;
        while cursor.pop_due(f64::INFINITY).is_some() {
            popped += 1;
        }
        assert_eq!(popped, plan.len());
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "rate")]
    fn negative_rate_panics() {
        let _ = ArrivalPlan::generate(1, &poisson_cfg(-0.5));
    }

    fn ev(at_secs: f64) -> ArrivalEvent {
        ArrivalEvent {
            at_secs,
            tenant: 0,
            job_class: 0,
        }
    }

    #[test]
    fn try_from_trace_accepts_a_clean_trace() {
        let plan = ArrivalPlan::try_from_trace(vec![ev(0.0), ev(1.0), ev(1.0), ev(2.5)], 10.0)
            .expect("clean trace");
        assert_eq!(plan.len(), 4);
        assert_eq!(plan.horizon_secs(), 10.0);
        // A valid trace round-trips through the unchecked constructor.
        assert_eq!(plan, ArrivalPlan::from_trace(plan.events().to_vec(), 10.0));
    }

    #[test]
    fn try_from_trace_rejects_nan_timestamps() {
        let err = ArrivalPlan::try_from_trace(vec![ev(0.0), ev(f64::NAN)], 10.0).unwrap_err();
        assert_eq!(err, ArrivalError::NanTimestamp(1));
        assert!(err.to_string().contains("NaN"));
    }

    #[test]
    fn try_from_trace_rejects_negative_and_infinite_timestamps() {
        let err = ArrivalPlan::try_from_trace(vec![ev(-1.0)], 10.0).unwrap_err();
        assert_eq!(err, ArrivalError::NegativeTimestamp(0, -1.0));
        let err = ArrivalPlan::try_from_trace(vec![ev(0.0), ev(f64::INFINITY)], 10.0).unwrap_err();
        assert_eq!(err, ArrivalError::NegativeTimestamp(1, f64::INFINITY));
    }

    #[test]
    fn try_from_trace_rejects_non_monotonic_timestamps() {
        let err = ArrivalPlan::try_from_trace(vec![ev(2.0), ev(1.0)], 10.0).unwrap_err();
        assert_eq!(err, ArrivalError::NonMonotonic(1, 1.0, 2.0));
        assert!(err.to_string().contains("before its predecessor"));
    }

    #[test]
    fn try_from_trace_rejects_bad_horizons() {
        let err = ArrivalPlan::try_from_trace(vec![ev(0.0)], f64::NAN).unwrap_err();
        assert!(matches!(err, ArrivalError::BadHorizon(h) if h.is_nan()));
        let err = ArrivalPlan::try_from_trace(vec![ev(0.0)], -5.0).unwrap_err();
        assert_eq!(err, ArrivalError::BadHorizon(-5.0));
    }

    #[test]
    fn try_from_trace_rejects_events_beyond_the_horizon() {
        let err = ArrivalPlan::try_from_trace(vec![ev(0.0), ev(10.0)], 10.0).unwrap_err();
        assert_eq!(err, ArrivalError::BeyondHorizon(1, 10.0));
        // Zero horizon admits a batch-at-zero trace but nothing later.
        assert!(ArrivalPlan::try_from_trace(vec![ev(0.0), ev(0.0)], 0.0).is_ok());
        let err = ArrivalPlan::try_from_trace(vec![ev(0.5)], 0.0).unwrap_err();
        assert_eq!(err, ArrivalError::BeyondHorizon(0, 0.5));
    }

    #[test]
    fn try_from_trace_accepts_empty_traces() {
        let plan = ArrivalPlan::try_from_trace(Vec::new(), 100.0).expect("empty trace");
        assert!(plan.is_empty());
    }
}
