//! Online statistics for simulation output analysis.
//!
//! Provides [`Welford`] (numerically stable running moments),
//! [`Histogram`] (fixed-width bins, used for the paper's Fig. 13 CPU-load
//! distribution), [`summary`] helpers (geometric mean, percentiles,
//! confidence intervals — the harness stops replaying a mix when the 95 %
//! half-width falls below 5 % of the mean, §5.2 of the paper), and
//! [`TimeWeighted`] gauges for utilisation-over-time traces (Fig. 7).

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Numerically stable running mean/variance (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use simkit::stats::Welford;
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.push(x);
/// }
/// assert_eq!(w.mean(), 5.0);
/// assert!((w.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean; 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by n); 0 when empty.
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance (divides by n-1); 0 with fewer than two samples.
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation; +inf when empty.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; -inf when empty.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Half-width of the normal-approximation 95 % confidence interval for
    /// the mean. Returns +inf with fewer than two samples, so callers that
    /// loop "until the CI is tight enough" take at least two replicates.
    #[must_use]
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            return f64::INFINITY;
        }
        1.96 * self.std_dev() / (self.n as f64).sqrt()
    }

    /// Returns `true` once the 95 % CI half-width is below
    /// `rel_tol × |mean|`. This is the paper's §5.2 stopping rule with
    /// `rel_tol = 0.05`.
    #[must_use]
    pub fn ci_converged(&self, rel_tol: f64) -> bool {
        let m = self.mean().abs();
        m > 0.0 && self.ci95_half_width() <= rel_tol * m
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A fixed-width-bin histogram over `[lo, hi)` with overflow/underflow bins.
///
/// # Examples
///
/// ```
/// use simkit::stats::Histogram;
/// let mut h = Histogram::new(0.0, 60.0, 6);
/// h.record(35.0);
/// h.record(12.0);
/// assert_eq!(h.bin_counts()[3], 1); // 30-40 bucket
/// assert_eq!(h.total(), 2);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram of `bins` equal-width buckets spanning `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `bins == 0`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "histogram range must be non-empty");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records an observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Per-bin counts, lowest bucket first.
    #[must_use]
    pub fn bin_counts(&self) -> &[u64] {
        &self.bins
    }

    /// The `(lo, hi)` edges of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        assert!(i < self.bins.len());
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + width * i as f64, self.lo + width * (i + 1) as f64)
    }

    /// Count of observations below the range.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of observations at or above the top of the range.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded, including out-of-range ones.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }
}

/// A time-weighted gauge: tracks the integral of a piecewise-constant signal
/// (e.g. per-node CPU utilisation) so its time average can be reported.
///
/// # Examples
///
/// ```
/// use simkit::stats::TimeWeighted;
/// use simkit::SimTime;
/// let mut g = TimeWeighted::new(SimTime::ZERO);
/// g.set(SimTime::from_secs(0.0), 0.2);
/// g.set(SimTime::from_secs(10.0), 0.8);
/// assert_eq!(g.time_average(SimTime::from_secs(20.0)), 0.5);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeWeighted {
    started: SimTime,
    last_change: SimTime,
    current: f64,
    integral: f64,
}

impl TimeWeighted {
    /// Creates a gauge that starts at zero at instant `start`.
    #[must_use]
    pub fn new(start: SimTime) -> Self {
        TimeWeighted {
            started: start,
            last_change: start,
            current: 0.0,
            integral: 0.0,
        }
    }

    /// Sets the gauge to `value` at instant `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the previous change (time must be monotone).
    pub fn set(&mut self, now: SimTime, value: f64) {
        let dt = now.duration_since(self.last_change).as_secs();
        self.integral += self.current * dt;
        self.current = value;
        self.last_change = now;
    }

    /// Current gauge value.
    #[must_use]
    pub fn current(&self) -> f64 {
        self.current
    }

    /// Time average of the gauge from its start until `now`.
    #[must_use]
    pub fn time_average(&self, now: SimTime) -> f64 {
        let total = now.duration_since(self.started).as_secs();
        if total == 0.0 {
            return self.current;
        }
        let pending = self.current * now.duration_since(self.last_change).as_secs();
        (self.integral + pending) / total
    }
}

/// Free-standing summaries over slices of observations.
pub mod summary {
    /// Geometric mean of strictly positive values; the paper reports
    /// geometric means across configurations (§5.2).
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or any value is not strictly positive.
    #[must_use]
    pub fn geometric_mean(xs: &[f64]) -> f64 {
        assert!(!xs.is_empty(), "geometric mean of an empty slice");
        let log_sum: f64 = xs
            .iter()
            .map(|&x| {
                assert!(x > 0.0, "geometric mean requires positive values, got {x}");
                x.ln()
            })
            .sum();
        (log_sum / xs.len() as f64).exp()
    }

    /// Arithmetic mean; 0 for an empty slice.
    #[must_use]
    pub fn mean(xs: &[f64]) -> f64 {
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    }

    /// Linear-interpolated percentile, `p` in `[0, 100]`.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or `p` is out of range.
    #[must_use]
    pub fn percentile(xs: &[f64], p: f64) -> f64 {
        assert!(!xs.is_empty(), "percentile of an empty slice");
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100]");
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN data"));
        let rank = p / 100.0 * (sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        if lo == hi {
            sorted[lo]
        } else {
            let frac = rank - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        }
    }

    /// Median (the 50th percentile).
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    #[must_use]
    pub fn median(xs: &[f64]) -> f64 {
        percentile(xs, 50.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_closed_form() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 5);
        assert_eq!(w.mean(), 3.0);
        assert!((w.sample_variance() - 2.5).abs() < 1e-12);
        assert_eq!(w.min(), 1.0);
        assert_eq!(w.max(), 5.0);
    }

    #[test]
    fn welford_empty_is_benign() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.population_variance(), 0.0);
        assert_eq!(w.ci95_half_width(), f64::INFINITY);
        assert!(!w.ci_converged(0.05));
    }

    #[test]
    fn welford_merge_equals_bulk() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 50.0).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.sample_variance() - whole.sample_variance()).abs() < 1e-9);
    }

    #[test]
    fn ci_converges_for_tight_data() {
        let mut w = Welford::new();
        for i in 0..50 {
            w.push(100.0 + (i % 3) as f64);
        }
        assert!(w.ci_converged(0.05));
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        h.record(-5.0);
        h.record(0.0);
        h.record(99.999);
        h.record(100.0);
        h.record(55.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.bin_counts()[0], 1);
        assert_eq!(h.bin_counts()[9], 1);
        assert_eq!(h.bin_counts()[5], 1);
        assert_eq!(h.total(), 5);
        assert_eq!(h.bin_edges(5), (50.0, 60.0));
    }

    #[test]
    fn time_weighted_average() {
        let mut g = TimeWeighted::new(SimTime::ZERO);
        g.set(SimTime::ZERO, 1.0);
        g.set(SimTime::from_secs(4.0), 0.0);
        // 4 s at 1.0 then 4 s at 0.0.
        assert_eq!(g.time_average(SimTime::from_secs(8.0)), 0.5);
        assert_eq!(g.current(), 0.0);
    }

    #[test]
    fn time_weighted_at_start_reports_current() {
        let g = TimeWeighted::new(SimTime::from_secs(5.0));
        assert_eq!(g.time_average(SimTime::from_secs(5.0)), 0.0);
    }

    #[test]
    fn geometric_mean_known_value() {
        let g = summary::geometric_mean(&[1.0, 4.0, 16.0]);
        assert!((g - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geometric_mean_rejects_nonpositive() {
        let _ = summary::geometric_mean(&[1.0, 0.0]);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(summary::percentile(&xs, 0.0), 10.0);
        assert_eq!(summary::percentile(&xs, 100.0), 40.0);
        assert_eq!(summary::median(&xs), 25.0);
        assert_eq!(summary::percentile(&xs, 50.0), 25.0);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(summary::mean(&[]), 0.0);
    }
}
