//! Seedable randomness with the distributions the workload models need.
//!
//! All stochastic behaviour in a campaign flows from one [`SimRng`] seed, so
//! an experiment is replayable bit-for-bit. The normal and log-normal
//! samplers are implemented with the Box–Muller transform to avoid pulling
//! in `rand_distr`.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random source for simulations.
///
/// # Examples
///
/// ```
/// use simkit::SimRng;
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
    /// Cached second output of the Box–Muller transform.
    spare_normal: Option<f64>,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
            spare_normal: None,
        }
    }

    /// Derives an independent child generator; useful for giving each
    /// replication or each node its own stream without correlations.
    #[must_use]
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from(self.inner.next_u64())
    }

    /// Samples uniformly from `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi);
        if lo == hi {
            return lo;
        }
        self.inner.gen_range(lo..hi)
    }

    /// Samples a uniform integer from `[lo, hi]` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi);
        self.inner.gen_range(lo..=hi)
    }

    /// Samples a standard uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Samples from a normal distribution via Box–Muller.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Samples a standard normal deviate.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Box–Muller: two uniforms -> two independent standard normals.
        let u1: f64 = loop {
            let u = self.unit();
            if u > f64::MIN_POSITIVE {
                break u;
            }
        };
        let u2 = self.unit();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Samples from a log-normal distribution with the given parameters of
    /// the underlying normal.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Samples from an exponential distribution with the given rate.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        let u: f64 = loop {
            let u = self.unit();
            if u > f64::MIN_POSITIVE {
                break u;
            }
        };
        -u.ln() / rate
    }

    /// Samples a multiplicative noise factor `1 + normal(0, rel_sd)`,
    /// truncated to stay within `[1 - 3·rel_sd, 1 + 3·rel_sd]` and strictly
    /// positive. Used for measurement noise on footprints and runtimes.
    pub fn relative_noise(&mut self, rel_sd: f64) -> f64 {
        if rel_sd == 0.0 {
            return 1.0;
        }
        let z = self.standard_normal().clamp(-3.0, 3.0);
        (1.0 + rel_sd * z).max(0.05)
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot choose from an empty slice");
        &items[self.uniform_usize(0, items.len() - 1)]
    }

    /// Shuffles `items` in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.uniform_usize(0, i);
            items.swap(i, j);
        }
    }

    /// Draws `k` distinct indices from `0..n` in random order.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} items from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx.truncate(k);
        idx
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest);
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.unit(), b.unit());
        }
    }

    #[test]
    fn forks_are_decorrelated() {
        let mut root = SimRng::seed_from(7);
        let mut a = root.fork();
        let mut b = root.fork();
        let same = (0..100).filter(|_| a.unit() == b.unit()).count();
        assert!(same < 5, "forked streams should not coincide");
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = SimRng::seed_from(1);
        for _ in 0..1000 {
            let x = rng.uniform(3.0, 8.0);
            assert!((3.0..8.0).contains(&x));
        }
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = SimRng::seed_from(2);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean was {mean}");
        assert!((var - 4.0).abs() < 0.25, "variance was {var}");
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = SimRng::seed_from(3);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.exponential(0.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean was {mean}");
    }

    #[test]
    fn relative_noise_is_bounded_and_positive() {
        let mut rng = SimRng::seed_from(4);
        for _ in 0..5000 {
            let f = rng.relative_noise(0.05);
            assert!(f > 0.0);
            assert!((f - 1.0).abs() <= 0.15 + 1e-12);
        }
        assert_eq!(rng.relative_noise(0.0), 1.0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from(5);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = SimRng::seed_from(6);
        let picks = rng.sample_indices(100, 10);
        assert_eq!(picks.len(), 10);
        let set: std::collections::HashSet<_> = picks.iter().collect();
        assert_eq!(set.len(), 10);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(8);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }
}
