//! # simkit — deterministic discrete-event simulation engine
//!
//! `simkit` is the substrate beneath the Spark-co-location reproduction: a
//! small, allocation-light discrete-event simulation (DES) core with
//!
//! * a virtual clock measured in seconds ([`SimTime`] / [`SimDuration`]),
//! * a stable, deterministic [`event::EventQueue`] (ties broken by insertion
//!   order, so replaying a seed replays the schedule exactly),
//! * a seedable random-number layer ([`rng::SimRng`]) with the distributions
//!   the workload models need (uniform, normal, log-normal, exponential),
//! * capacity-checked [`resource::ResourcePool`]s for modeling RAM, swap and
//!   CPU shares,
//! * a deterministic fault-injection layer ([`faults::FaultPlan`]): seeded,
//!   replayable chaos schedules (node crashes, executor crashes, monitor
//!   dropouts, prediction noise, spot-instance preemptions) drawn entirely
//!   up front so chaos campaigns stay bit-for-bit identical across worker
//!   counts,
//! * a deterministic open-system arrival layer ([`arrivals::ArrivalPlan`]):
//!   seeded, pre-drawn job-arrival schedules (Poisson, bursty/diurnal,
//!   trace-driven) in the same pre-drawn style, so streaming campaigns are
//!   schedule- and worker-count-independent,
//! * a chaos-search layer ([`chaoskit`]): randomized-but-deterministic
//!   [`chaoskit::Episode`]s drawn from an [`chaoskit::EpisodeSpace`], plus
//!   delta-debugging [`chaoskit::shrink`]ing that reduces an
//!   invariant-violating episode to a minimal reproducer replayable from a
//!   single `(seed, episode)` pair,
//! * a crash-safe persistence layer ([`journal`]): append-only, checksummed
//!   record logs with atomic header creation, torn-tail recovery and
//!   deterministic kill-point injection, used by the campaign harness to
//!   checkpoint completed replay folds so interrupted sweeps resume
//!   bit-for-bit, and
//! * online statistics ([`stats`]) — Welford moments, histograms,
//!   percentiles, confidence intervals and time-weighted gauges — used by the
//!   experiment harness to decide when the 95 % confidence half-width has
//!   shrunk below 5 % of the mean (the paper's stopping rule, §5.2).
//!
//! The engine is intentionally single-threaded: determinism and
//! replayability matter more than wall-clock speed for scheduling studies,
//! and a full 40-node, 30-application campaign simulates in milliseconds.
//! Campaign-level parallelism lives one layer up: [`par::par_map_indexed`]
//! fans statistically independent replays out across scoped worker threads
//! and commits their results in index order, so a multi-core campaign is
//! bit-for-bit identical to the serial one.
//!
//! ## Example
//!
//! ```
//! use simkit::{Engine, SimTime, SimDuration};
//!
//! #[derive(Debug)]
//! enum Ev { Ping(u32) }
//!
//! let mut engine = Engine::new();
//! engine.schedule(SimTime::ZERO, Ev::Ping(0));
//! let mut seen = Vec::new();
//! engine.run(|eng, ev| {
//!     let Ev::Ping(n) = ev;
//!     seen.push((eng.now(), n));
//!     if n < 3 {
//!         eng.schedule_after(SimDuration::from_secs(1.0), Ev::Ping(n + 1));
//!     }
//! });
//! assert_eq!(seen.len(), 4);
//! assert_eq!(seen[3].0, SimTime::from_secs(3.0));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arrivals;
pub mod chaoskit;
pub mod engine;
pub mod event;
pub mod faults;
pub mod journal;
pub mod par;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;

pub use arrivals::{
    ArrivalCursor, ArrivalError, ArrivalEvent, ArrivalPlan, ArrivalPlanConfig, ArrivalProcess,
};
pub use chaoskit::{Episode, EpisodeSpace, ShrinkResult, Violation};
pub use engine::Engine;
pub use event::{EventQueue, QueueBackend};
pub use faults::{FaultCursor, FaultEvent, FaultKind, FaultPlan, FaultPlanConfig};
pub use resource::{ResourceError, ResourcePool};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
