//! Property-based tests for the crash-safe journal (`simkit::journal`).
//!
//! The two invariants the resumable-campaign design rests on:
//!
//! 1. **Longest-valid-prefix recovery** — truncating a journal at *any*
//!    byte offset (a crash mid-append, a torn sector) loses at most the
//!    record being written; every fully committed record before the cut
//!    is recovered verbatim, in order.
//! 2. **Corruption detection** — flipping any single byte in the record
//!    region makes the per-record FNV-64 checksum (or the length/bounds
//!    scan) reject the damaged record and everything after it, never
//!    returning silently wrong payloads.

use proptest::prelude::*;
use simkit::journal::{fnv64, Journal, JournalError, MAGIC};
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smjl_prop_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Bytes occupied by the header for `binding`: magic, length, blob, crc.
fn header_len(binding: &[u8]) -> usize {
    MAGIC.len() + 4 + binding.len() + 8
}

/// Writes `records` into a fresh journal at `path` and returns the raw
/// file bytes.
fn write_journal(path: &PathBuf, binding: &[u8], records: &[Vec<u8>]) -> Vec<u8> {
    let _ = std::fs::remove_file(path);
    let mut rec = Journal::open(path, binding, 1).unwrap();
    for r in records {
        rec.journal.append(r).unwrap();
    }
    rec.journal.sync().unwrap();
    drop(rec);
    std::fs::read(path).unwrap()
}

/// The records a scan of the first `cut` bytes should recover: walk the
/// encoding and keep every record that fits entirely below the cut.
fn expected_prefix(records: &[Vec<u8>], binding: &[u8], cut: usize) -> Vec<Vec<u8>> {
    let mut pos = header_len(binding);
    let mut kept = Vec::new();
    for r in records {
        let end = pos + 12 + r.len();
        if end > cut {
            break;
        }
        kept.push(r.clone());
        pos = end;
    }
    kept
}

proptest! {
    /// Truncating the file at EVERY byte offset recovers exactly the
    /// longest valid record prefix; cuts inside the header are refused
    /// with a typed `Corrupt` error rather than a panic or bad data.
    #[test]
    fn truncation_recovers_longest_valid_prefix(
        records in proptest::collection::vec(
            proptest::collection::vec(0u8..=255, 0..24),
            0..6,
        ),
        binding_tail in proptest::collection::vec(0u8..=255, 0..12),
        case in any::<u64>(),
    ) {
        let mut binding = b"prop-binding:".to_vec();
        binding.extend_from_slice(&binding_tail);
        let dir = tmp_dir("truncate");
        let path = dir.join(format!("c{case:016x}.journal"));
        let full = write_journal(&path, &binding, &records);
        let hdr = header_len(&binding);

        for cut in 0..=full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            match Journal::open(&path, &binding, 1) {
                Ok(recovered) => {
                    prop_assert!(cut >= hdr, "cut {cut} inside header {hdr} accepted");
                    prop_assert_eq!(
                        &recovered.records,
                        &expected_prefix(&records, &binding, cut),
                        "wrong prefix at cut {}", cut
                    );
                    prop_assert_eq!(
                        recovered.truncated_bytes as usize,
                        cut - (hdr + recovered
                            .records
                            .iter()
                            .map(|r| 12 + r.len())
                            .sum::<usize>()),
                        "truncated-byte accounting at cut {}", cut
                    );
                }
                Err(JournalError::Corrupt(_)) => {
                    prop_assert!(cut < hdr, "header-style error past header at cut {cut}");
                }
                Err(other) => prop_assert!(false, "unexpected error at cut {}: {}", cut, other),
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Flipping any single byte in the record region is detected: every
    /// record before the damaged one survives verbatim, and the damaged
    /// record is never returned with its original bytes.
    #[test]
    fn single_byte_corruption_never_yields_wrong_payloads(
        records in proptest::collection::vec(
            proptest::collection::vec(0u8..=255, 1..24),
            1..6,
        ),
        flip_offset in 0usize..4096,
        flip_mask in 1u8..=255,
        case in any::<u64>(),
    ) {
        let binding = b"prop-binding-corrupt".to_vec();
        let dir = tmp_dir("flip");
        let path = dir.join(format!("c{case:016x}.journal"));
        let full = write_journal(&path, &binding, &records);
        let hdr = header_len(&binding);

        // Aim the flip somewhere in the record region.
        let region = full.len() - hdr;
        let at = hdr + flip_offset % region;
        let mut damaged = full.clone();
        damaged[at] ^= flip_mask;
        std::fs::write(&path, &damaged).unwrap();

        // Index of the record whose encoding covers the flipped byte.
        let mut pos = hdr;
        let mut victim = records.len();
        for (i, r) in records.iter().enumerate() {
            let end = pos + 12 + r.len();
            if at < end {
                victim = i;
                break;
            }
            pos = end;
        }
        prop_assert!(victim < records.len(), "flip landed outside every record");

        let recovered = Journal::open(&path, &binding, 1).unwrap();
        // Everything before the victim is intact and in order.
        prop_assert!(recovered.records.len() >= victim);
        prop_assert_eq!(&recovered.records[..victim], &records[..victim]);
        // The FNV-64 guard: whatever the scan salvaged at the victim's
        // position, it is never the original payload passed off as valid.
        if recovered.records.len() > victim {
            prop_assert!(
                fnv64(&recovered.records[victim]) != fnv64(&records[victim])
                    || recovered.records[victim] != records[victim]
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Round trip: whatever was appended comes back bit-for-bit, with a
    /// clean (zero-truncation) open.
    #[test]
    fn append_then_reopen_is_lossless(
        records in proptest::collection::vec(
            proptest::collection::vec(0u8..=255, 0..64),
            0..10,
        ),
        case in any::<u64>(),
    ) {
        let binding = b"prop-binding-roundtrip".to_vec();
        let dir = tmp_dir("roundtrip");
        let path = dir.join(format!("c{case:016x}.journal"));
        write_journal(&path, &binding, &records);
        let back = Journal::open(&path, &binding, 1).unwrap();
        prop_assert!(!back.created);
        prop_assert_eq!(back.truncated_bytes, 0);
        prop_assert_eq!(&back.records, &records);
        prop_assert_eq!(back.journal.records(), records.len() as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
