//! Property-based tests for simkit invariants.

use proptest::prelude::*;
use simkit::stats::{Histogram, TimeWeighted, Welford};
use simkit::{EventQueue, QueueBackend, ResourcePool, SimRng, SimTime};

proptest! {
    /// Events always pop in non-decreasing time order, regardless of the
    /// insertion order.
    #[test]
    fn event_queue_pops_sorted(times in proptest::collection::vec(0.0f64..1e6, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_secs(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0;
        while let Some((at, _)) = q.pop() {
            prop_assert!(at >= last);
            last = at;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Same-timestamp events preserve insertion order (stability).
    #[test]
    fn event_queue_stable_at_equal_times(n in 1usize..100) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.push(SimTime::from_secs(42.0), i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    /// The slab-backed queue behaves exactly like a naive reference model
    /// under arbitrary push / cancel / pop / peek / clear interleavings:
    /// same pop order, same cancel verdicts, same lengths. This pins the
    /// lifecycle bookkeeping (Live/Cancelled/Fired slots, eager front
    /// compaction) against the simplest possible specification.
    #[test]
    fn event_queue_matches_reference_model(
        ops in proptest::collection::vec((0u8..6, 0usize..64, 0.0f64..1e3), 1..200),
    ) {
        let mut q = EventQueue::new();
        // Model: (time, seq, payload) of still-live events, plus every id
        // ever issued so cancels can target fired/cancelled/cleared
        // handles too.
        let mut model: Vec<(SimTime, u64, usize)> = Vec::new();
        let mut issued = Vec::new();
        let mut next_seq = 0u64;
        for (i, &(op, pick, time)) in ops.iter().enumerate() {
            match op {
                0 | 1 => {
                    let at = SimTime::from_secs(time);
                    let id = q.push(at, i);
                    issued.push((id, next_seq));
                    model.push((at, next_seq, i));
                    next_seq += 1;
                }
                2 => {
                    if !issued.is_empty() {
                        let (id, seq) = issued[pick % issued.len()];
                        let was_live = model.iter().any(|&(_, s, _)| s == seq);
                        prop_assert_eq!(q.cancel(id), was_live);
                        model.retain(|&(_, s, _)| s != seq);
                    }
                }
                3 => {
                    let mut best: Option<(usize, SimTime, u64)> = None;
                    for (idx, &(at, s, _)) in model.iter().enumerate() {
                        if best.is_none_or(|(_, bat, bs)| (at, s) < (bat, bs)) {
                            best = Some((idx, at, s));
                        }
                    }
                    match best {
                        Some((idx, _, _)) => {
                            let (at, _, payload) = model.remove(idx);
                            prop_assert_eq!(q.pop(), Some((at, payload)));
                        }
                        None => prop_assert_eq!(q.pop(), None),
                    }
                }
                4 => {
                    let expect = model.iter().map(|&(at, s, _)| (at, s)).min().map(|(at, _)| at);
                    prop_assert_eq!(q.peek_time(), expect);
                }
                _ => {
                    q.clear();
                    model.clear();
                }
            }
            prop_assert_eq!(q.len(), model.len());
            prop_assert_eq!(q.is_empty(), model.is_empty());
        }
    }

    /// The calendar-queue backend is pinned **bit-identical** to the
    /// binary heap: under arbitrary push/cancel/pop/peek/clear
    /// interleavings the two backends agree on every pop (time *and*
    /// payload — `(SimTime, seq)` order in both), every cancel verdict,
    /// every peek and every length. Time generation deliberately mixes
    /// three magnitudes so the calendar queue's overflow day (events far
    /// beyond the cursor's day), cursor rewinds (pushes behind the
    /// cursor) and bucket-resize boundaries (populations crossing the
    /// 2·nbuckets / nbuckets/4 thresholds) all trigger, and a coarse
    /// quantisation (rounding to 1/4s) produces frequent exact ties.
    #[test]
    fn calendar_queue_matches_heap_oracle(
        ops in proptest::collection::vec(
            (0u8..7, 0usize..64, 0.0f64..1e3, 0u8..3),
            1..300,
        ),
    ) {
        let mut heap = EventQueue::with_backend(QueueBackend::Heap);
        let mut cal = EventQueue::with_backend(QueueBackend::Calendar);
        let mut heap_ids = Vec::new();
        let mut cal_ids = Vec::new();
        for (i, &(op, pick, time, scale)) in ops.iter().enumerate() {
            match op {
                // Pushes are weighted 3:1 against pops so populations grow
                // enough to cross resize boundaries.
                0..=2 => {
                    // Quantised times at three magnitudes: dense ties,
                    // day-scale spread, far-future overflow.
                    let secs = match scale {
                        0 => (time * 4.0).round() / 4.0,
                        1 => (time * 4.0).round() * 25.0,
                        _ => (time * 4.0).round() * 1e4,
                    };
                    let at = SimTime::from_secs(secs);
                    heap_ids.push(heap.push(at, i));
                    cal_ids.push(cal.push(at, i));
                }
                3 => {
                    if !heap_ids.is_empty() {
                        let k = pick % heap_ids.len();
                        prop_assert_eq!(heap.cancel(heap_ids[k]), cal.cancel(cal_ids[k]));
                    }
                }
                4 => prop_assert_eq!(heap.pop(), cal.pop()),
                5 => prop_assert_eq!(heap.peek_time(), cal.peek_time()),
                _ => {
                    heap.clear();
                    cal.clear();
                }
            }
            prop_assert_eq!(heap.len(), cal.len());
        }
        // Drain both: the full remaining streams must match exactly.
        loop {
            let (h, c) = (heap.pop(), cal.pop());
            prop_assert_eq!(h, c);
            if h.is_none() {
                break;
            }
        }
    }

    /// A pool never reports usage below zero or above capacity, no matter
    /// what sequence of reserve/release calls is attempted.
    #[test]
    fn resource_pool_invariants(
        capacity in 1.0f64..1e6,
        ops in proptest::collection::vec((any::<bool>(), 0.0f64..1e6), 0..200),
    ) {
        let mut pool = ResourcePool::new("p", capacity);
        for (is_reserve, amount) in ops {
            if is_reserve {
                let _ = pool.reserve(amount);
            } else {
                let _ = pool.release(amount);
            }
            prop_assert!(pool.in_use() >= 0.0);
            prop_assert!(pool.in_use() <= pool.capacity() + 1e-6);
            prop_assert!(pool.available() >= 0.0);
            prop_assert!(pool.peak() >= pool.in_use() - 1e-9);
        }
    }

    /// reserve followed by release of the same amount restores availability.
    #[test]
    fn resource_pool_round_trip(capacity in 1.0f64..1e6, frac in 0.0f64..1.0) {
        let mut pool = ResourcePool::new("p", capacity);
        let amount = capacity * frac;
        pool.reserve(amount).unwrap();
        pool.release(amount).unwrap();
        prop_assert!(pool.in_use().abs() < 1e-6);
    }

    /// Welford's merge is equivalent to accumulating the concatenation.
    #[test]
    fn welford_merge_consistent(
        a in proptest::collection::vec(-1e3f64..1e3, 0..100),
        b in proptest::collection::vec(-1e3f64..1e3, 0..100),
    ) {
        let mut wa = Welford::new();
        for &x in &a { wa.push(x); }
        let mut wb = Welford::new();
        for &x in &b { wb.push(x); }
        let mut whole = Welford::new();
        for &x in a.iter().chain(b.iter()) { whole.push(x); }
        wa.merge(&wb);
        prop_assert_eq!(wa.count(), whole.count());
        if whole.count() > 0 {
            prop_assert!((wa.mean() - whole.mean()).abs() < 1e-6);
            prop_assert!((wa.sample_variance() - whole.sample_variance()).abs() < 1e-4);
        }
    }

    /// The same seed yields the same stream; different seeds (almost
    /// always) diverge.
    #[test]
    fn rng_is_deterministic(seed in any::<u64>()) {
        let mut a = SimRng::seed_from(seed);
        let mut b = SimRng::seed_from(seed);
        for _ in 0..32 {
            prop_assert_eq!(a.unit(), b.unit());
        }
    }

    /// shuffle produces a permutation of its input.
    #[test]
    fn shuffle_is_permutation(seed in any::<u64>(), n in 0usize..200) {
        let mut rng = SimRng::seed_from(seed);
        let mut v: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    /// Histogram counts always total the number of recorded observations,
    /// regardless of out-of-range values.
    #[test]
    fn histogram_conserves_observations(
        values in proptest::collection::vec(-50.0f64..150.0, 0..300),
    ) {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.total() as usize, values.len());
        let binned: u64 = h.bin_counts().iter().sum();
        prop_assert_eq!(binned + h.underflow() + h.overflow(), h.total());
    }

    /// A time-weighted gauge's average always lies within the range of the
    /// values it was set to.
    #[test]
    fn time_weighted_average_is_bounded(
        steps in proptest::collection::vec((0.1f64..100.0, 0.0f64..10.0), 1..50),
    ) {
        let mut g = TimeWeighted::new(SimTime::ZERO);
        let mut t = 0.0;
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &(dt, v) in &steps {
            g.set(SimTime::from_secs(t), v);
            lo = lo.min(v);
            hi = hi.max(v);
            t += dt;
        }
        let avg = g.time_average(SimTime::from_secs(t));
        // The gauge started at 0 before the first set at t=0, so include 0
        // only if the first set was not at the origin — here it always is.
        prop_assert!(avg >= lo - 1e-9, "avg {avg} below lo {lo}");
        prop_assert!(avg <= hi + 1e-9, "avg {avg} above hi {hi}");
    }

    /// Welford min/max bracket the mean.
    #[test]
    fn welford_mean_is_bracketed(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        prop_assert!(w.min() <= w.mean() + 1e-6);
        prop_assert!(w.mean() <= w.max() + 1e-6);
        prop_assert!(w.sample_variance() >= 0.0);
    }

    /// Chan et al. pairwise combine: pushing a sequence serially and
    /// merging arbitrary contiguous shards of it must agree on every
    /// moment — the invariant the parallel campaign fold relies on.
    #[test]
    fn welford_merge_matches_serial_push(
        xs in proptest::collection::vec(-1e3f64..1e3, 1..300),
        cuts in proptest::collection::vec(0usize..300, 0..6),
    ) {
        let mut serial = Welford::new();
        for &x in &xs {
            serial.push(x);
        }

        // Split points (deduped, clamped) partition xs into shards; fold
        // each shard separately, then merge left to right.
        let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % (xs.len() + 1)).collect();
        bounds.push(0);
        bounds.push(xs.len());
        bounds.sort_unstable();
        bounds.dedup();
        let mut merged = Welford::new();
        for pair in bounds.windows(2) {
            let mut shard = Welford::new();
            for &x in &xs[pair[0]..pair[1]] {
                shard.push(x);
            }
            merged.merge(&shard);
        }

        prop_assert_eq!(merged.count(), serial.count());
        prop_assert!(
            (merged.mean() - serial.mean()).abs() < 1e-9,
            "mean {} vs {}",
            merged.mean(),
            serial.mean()
        );
        prop_assert!(
            (merged.sample_variance() - serial.sample_variance()).abs()
                < 1e-9 * (1.0 + serial.sample_variance()),
            "variance {} vs {}",
            merged.sample_variance(),
            serial.sample_variance()
        );
        prop_assert_eq!(merged.min().to_bits(), serial.min().to_bits());
        prop_assert_eq!(merged.max().to_bits(), serial.max().to_bits());
    }

    /// Merging empty shards in either direction is the identity.
    #[test]
    fn welford_merge_empty_is_identity(xs in proptest::collection::vec(-1e3f64..1e3, 1..50)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let before = (w.count(), w.mean().to_bits(), w.sample_variance().to_bits());
        w.merge(&Welford::new());
        prop_assert_eq!(before.0, w.count());
        prop_assert_eq!(before.1, w.mean().to_bits());
        prop_assert_eq!(before.2, w.sample_variance().to_bits());

        let mut empty = Welford::new();
        empty.merge(&w);
        prop_assert_eq!(empty.count(), w.count());
        prop_assert_eq!(empty.mean().to_bits(), w.mean().to_bits());
    }
}
