//! Criterion micro-benchmarks for the mlkit primitives on realistic sizes
//! (22 features, 44-benchmark data).

use criterion::{criterion_group, criterion_main, Criterion};
use mlkit::knn::KnnClassifier;
use mlkit::pca::Pca;
use mlkit::regression::{self, CurveFamily};
use simkit::SimRng;
use std::hint::black_box;
use workloads::{signatures, Catalog};

fn bench_mlkit(c: &mut Criterion) {
    let catalog = Catalog::paper();
    let mut rng = SimRng::seed_from(4);
    let rows: Vec<Vec<f64>> = catalog
        .all()
        .iter()
        .map(|b| signatures::observe_default(b, &mut rng).into_vec())
        .collect();
    let labels: Vec<usize> = catalog
        .all()
        .iter()
        .map(|b| b.family() as usize % 3)
        .collect();

    c.bench_function("pca_fit_44x22", |b| {
        b.iter(|| black_box(Pca::fit(black_box(&rows), 5).unwrap()))
    });

    let knn = KnnClassifier::fit(&rows, &labels, 1).unwrap();
    let probe = rows[7].clone();
    c.bench_function("knn_predict_44x22", |b| {
        b.iter(|| black_box(knn.predict_with_evidence(black_box(&probe)).unwrap()))
    });

    let xs: Vec<f64> = (1..=40).map(|i| i as f64 * 0.5).collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|&x| regression::evaluate(CurveFamily::Exponential, 5.768, 4.479, x))
        .collect();
    c.bench_function("fit_exponential_40pts", |b| {
        b.iter(|| black_box(regression::fit_exponential(black_box(&xs), black_box(&ys)).unwrap()))
    });

    c.bench_function("two_point_calibration", |b| {
        b.iter(|| {
            black_box(
                regression::solve_two_point(
                    CurveFamily::NapierianLog,
                    black_box((1.25, 16.7)),
                    black_box((2.5, 17.9)),
                )
                .unwrap(),
            )
        })
    });
}

criterion_group!(benches, bench_mlkit);
criterion_main!(benches);
