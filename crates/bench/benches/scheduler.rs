//! Criterion benchmark for the co-location scheduler's event loop: one
//! full L5 campaign (11 applications on 40 nodes) per iteration.

use colocate::harness::trained_system_for;
use colocate::scheduler::{run_schedule, PolicyKind, SchedulerConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use simkit::SimRng;
use std::hint::black_box;
use workloads::{Catalog, MixScenario};

fn bench_schedules(c: &mut Criterion) {
    let catalog = Catalog::paper();
    let config = SchedulerConfig::default();
    let run_config = colocate::harness::RunConfig::default();
    let mut rng = SimRng::seed_from(3);
    let mix = MixScenario::TABLE3[4].random_mix(&catalog, &mut rng); // L5
    let system = trained_system_for(PolicyKind::Moe, &catalog, &run_config, 3)
        .unwrap()
        .unwrap();

    c.bench_function("schedule_L5_oracle", |b| {
        b.iter(|| {
            black_box(run_schedule(PolicyKind::Oracle, &catalog, &mix, None, &config, 3).unwrap())
        })
    });

    c.bench_function("schedule_L5_moe", |b| {
        b.iter(|| {
            black_box(
                run_schedule(PolicyKind::Moe, &catalog, &mix, Some(&system), &config, 3).unwrap(),
            )
        })
    });
}

/// Heap-churn microbenchmark for the pending-event set: the same
/// push/pop-heavy workload against a cold `EventQueue::new` (which grows
/// the `BinaryHeap` through repeated doublings) and a pre-sized
/// `EventQueue::with_capacity`.
fn bench_event_queue(c: &mut Criterion) {
    use simkit::{EventQueue, SimTime};

    const EVENTS: usize = 4096;
    let times: Vec<SimTime> = (0..EVENTS)
        .map(|i| SimTime::from_secs(((i * 2_654_435_761) % EVENTS) as f64))
        .collect();

    let drive = |mut q: EventQueue<usize>| {
        for (i, &t) in times.iter().enumerate() {
            q.push(t, i);
        }
        let mut sum = 0usize;
        while let Some((_, e)) = q.pop() {
            sum += e;
        }
        sum
    };

    c.bench_function("event_queue_churn_cold", |b| {
        b.iter(|| black_box(drive(EventQueue::new())))
    });

    c.bench_function("event_queue_churn_prealloc", |b| {
        b.iter(|| black_box(drive(EventQueue::with_capacity(EVENTS))))
    });
}

criterion_group!(benches, bench_schedules, bench_event_queue);
criterion_main!(benches);
