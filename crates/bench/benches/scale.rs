//! Cluster-scale micro-benchmarks: the two data structures that decide
//! whether the simulator core survives 10k-node clusters.
//!
//! * **queue hold churn, heap vs calendar** — steady-state pop-min /
//!   push-replacement transitions at stationary populations proportional
//!   to cluster size. The calendar queue's O(1) bucket hops replace the
//!   heap's `log n` sift per operation.
//! * **completion churn, whole-placement vs sharded** — the scheduler's
//!   `next_completion` → `advance` → `complete` → respawn loop. The
//!   whole-placement mode recomputes every node's rates per event (the
//!   pre-sharding cost model); the sharded mode touches only dirty shards
//!   plus a tournament-tree path.
//!
//! `fig20_scale` records the same loops as `results/BENCH_scale.json`
//! (both measure `bench_suite::scalekit` builders); these Criterion rows
//! exist for statistically careful spot checks.

use bench_suite::scalekit::{
    build_queue, completion_step, hold_churn, scale_engine, EXECUTORS_PER_NODE,
};
use criterion::{criterion_group, criterion_main, Criterion};
use simkit::QueueBackend;
use sparklite::engine::RateCacheMode;
use std::hint::black_box;

fn bench_queue_churn(c: &mut Criterion) {
    const STEPS: usize = 256;
    for depth in [1_000usize, 25_000] {
        for (label, backend) in [
            ("heap", QueueBackend::Heap),
            ("calendar", QueueBackend::Calendar),
        ] {
            let mut q = build_queue(backend, depth);
            let mut k = 0usize;
            c.bench_function(&format!("scale_queue_hold_{label}_{depth}"), |b| {
                b.iter(|| {
                    let sum = black_box(hold_churn(&mut q, depth, STEPS, k));
                    k += STEPS;
                    sum
                })
            });
        }
    }
}

fn bench_completion_churn(c: &mut Criterion) {
    for nodes in [400usize, 4_000] {
        for (label, mode) in [
            ("whole", RateCacheMode::WholePlacement),
            ("sharded", RateCacheMode::Sharded),
        ] {
            let mut eng = scale_engine(nodes, mode);
            let mut k = nodes * EXECUTORS_PER_NODE;
            c.bench_function(&format!("scale_completion_{label}_{nodes}n"), |b| {
                b.iter(|| {
                    completion_step(&mut eng, k);
                    k += 1;
                })
            });
        }
    }
}

criterion_group!(benches, bench_queue_churn, bench_completion_churn);
criterion_main!(benches);
