//! Criterion benchmarks for the prediction serving path: the scalar
//! per-request `select` loop vs the whole-matrix `select_batch` path at
//! the fig23 batch sizes, plus artifact encode/decode.

use bench_suite::serving::Firehose;
use colocate::serving::ModelArtifact;
use colocate::training::{train_system, TrainingConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use simkit::SimRng;
use std::hint::black_box;
use workloads::Catalog;

fn bench_serving(c: &mut Criterion) {
    let catalog = Catalog::paper();
    let mut rng = SimRng::seed_from(42);
    let system = train_system(&catalog, &TrainingConfig::default(), &mut rng).unwrap();
    let predictor = &system.predictor;

    let mut stream = Firehose::new(&catalog, 42, 4096);
    let features = stream.next_chunk(4096);

    c.bench_function("serving_scalar_4096", |b| {
        b.iter(|| {
            for f in &features {
                black_box(predictor.select(black_box(f)).unwrap());
            }
        })
    });

    for batch in [16usize, 256, 4096] {
        c.bench_function(&format!("serving_batched_{batch}"), |b| {
            b.iter(|| {
                for chunk in features.chunks(batch) {
                    black_box(predictor.select_batch(black_box(chunk)).unwrap());
                }
            })
        });
    }

    let artifact = ModelArtifact::from_predictor(predictor, &system.fitted_curves).unwrap();
    let encoded = artifact.encode();
    c.bench_function("artifact_encode", |b| {
        b.iter(|| black_box(artifact.encode()))
    });
    c.bench_function("artifact_decode", |b| {
        b.iter(|| black_box(ModelArtifact::decode(black_box(&encoded)).unwrap()))
    });
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
