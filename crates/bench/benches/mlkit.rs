//! ML-pipeline benchmarks: the kernels and training campaigns behind the
//! MoE predictor (PCA over 22 features, KNN expert selection, per-fold
//! leave-one-out training).
//!
//! Five cases, matching the flat-kernel and parallel-LOOCV work:
//!
//! * **matmul 64×64** — dense `Matrix::matmul` (the PCA/eigen workhorse);
//! * **KNN predict 2048×22** — one query against a large exemplar store
//!   (distance pass + neighbour selection);
//! * **PCA fit-for-variance 64×22** — the selector's feature-reduction
//!   step (covariance + Jacobi eigendecomposition + truncation rule);
//! * **exponential curve fit** — `fit_exponential`'s 1-D line search, the
//!   dominant cost of offline benchmark profiling;
//! * **LOOCV fig17 campaign** — the full 16-fold leave-one-out training
//!   sweep the fig16/17/18 and tab05 binaries run.
//!
//! Besides the Criterion rows, the harness can record medians for
//! `results/BENCH_mlkit.json` (mirroring `benches/hotpath.rs`):
//!
//! * `SPARK_MOE_MLKIT_OUT=<path>` — write this run's medians to `<path>`
//!   (run this on the *before* commit);
//! * `SPARK_MOE_MLKIT_BASELINE=<path>` — read a baseline written by the
//!   above and emit `results/BENCH_mlkit.json` with before/after medians
//!   and speedups via the atomic report writer.

use colocate::training::{train_loocv_all, TrainingConfig};
use criterion::{criterion_group, Criterion};
use mlkit::knn::KnnClassifier;
use mlkit::linalg::Matrix;
use mlkit::pca::Pca;
use mlkit::regression;
use simkit::SimRng;
use std::hint::black_box;
use std::time::Instant;

/// Deterministic pseudo-random matrix entries (no RNG dependency: the
/// values only need to be dense and well-conditioned, not random).
fn dense(rows: usize, cols: usize, salt: usize) -> Matrix {
    Matrix::from_rows(
        (0..rows)
            .map(|r| {
                (0..cols)
                    .map(|c| {
                        let x = (r * cols + c + salt) as f64;
                        (x * 0.61803398875).fract() * 2.0 - 1.0
                    })
                    .collect()
            })
            .collect(),
    )
}

fn matmul_case(a: &Matrix, b: &Matrix) -> f64 {
    let c = a.matmul(b).expect("conformable");
    c.get(0, 0)
}

/// A 3-class exemplar cloud in 22-d: blobs around three centres with a
/// deterministic per-point offset.
fn knn_fixture(n: usize) -> KnnClassifier {
    let dims = 22;
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let class = i % 3;
            (0..dims)
                .map(|d| {
                    let jitter = (((i * 31 + d * 7) % 97) as f64 / 97.0 - 0.5) * 0.4;
                    class as f64 * 2.0 + (d % 5) as f64 * 0.1 + jitter
                })
                .collect()
        })
        .collect();
    let ys: Vec<usize> = (0..n).map(|i| i % 3).collect();
    KnnClassifier::fit(&xs, &ys, 7).expect("knn fixture")
}

fn knn_case(knn: &KnnClassifier, queries: &[Vec<f64>]) -> usize {
    queries
        .iter()
        .map(|q| knn.predict_with_evidence(q).expect("query").label)
        .sum()
}

fn knn_queries(count: usize) -> Vec<Vec<f64>> {
    (0..count)
        .map(|i| {
            (0..22)
                .map(|d| (i % 3) as f64 * 2.0 + (d % 5) as f64 * 0.1 + 0.05)
                .collect()
        })
        .collect()
}

/// Scaled feature rows of the fig04 shape (many observations, 22 dims).
fn pca_rows() -> Vec<Vec<f64>> {
    let catalog = bench_suite::catalog();
    let mut rng = SimRng::seed_from(0xF164);
    let mut rows = Vec::new();
    for bench in catalog.training_set() {
        for _ in 0..4 {
            rows.push(workloads::signatures::observe_default(bench, &mut rng).into_vec());
        }
    }
    let scaler = mlkit::scaling::MinMaxScaler::fit(&rows).expect("scaler");
    scaler.transform_batch(&rows).expect("scale")
}

fn pca_case(rows: &[Vec<f64>]) -> usize {
    Pca::fit_for_variance(rows, 0.95).expect("pca").components()
}

/// The 12-point saturating-exponential profile `fit_benchmark` fits.
fn exp_points() -> (Vec<f64>, Vec<f64>) {
    let xs = TrainingConfig::default().profile_sizes_gb;
    let ys: Vec<f64> = xs
        .iter()
        .map(|&x| 5.768 * (1.0 - (-4.479 * x).exp()) * (1.0 + 0.002 * (x * 13.0).sin()))
        .collect();
    (xs, ys)
}

fn exp_fit_case(xs: &[f64], ys: &[f64]) -> f64 {
    regression::fit_exponential(xs, ys).expect("exp fit").b
}

/// The fig17-shaped LOOCV campaign: leave-one-out training for every one
/// of the 16 training benchmarks, via the shared-profile parallel pipeline
/// the fig17/fig18 binaries now run (4 workers, matching CI's bit-identity
/// gate). The baseline median for this case was recorded on the serial
/// per-fold `train_loocv` loop.
fn loocv_campaign() -> usize {
    let catalog = bench_suite::catalog();
    let config = TrainingConfig::default();
    let systems = train_loocv_all(catalog, &catalog.training_set(), &config, 0xF1617, 4)
        .expect("loocv campaign");
    systems.iter().map(|s| s.programs.len()).sum()
}

fn bench_matmul(c: &mut Criterion) {
    let a = dense(64, 64, 1);
    let b = dense(64, 64, 2);
    c.bench_function("mlkit_matmul_64x64", |bch| {
        bch.iter(|| black_box(matmul_case(&a, &b)))
    });
}

fn bench_knn(c: &mut Criterion) {
    let knn = knn_fixture(2048);
    let queries = knn_queries(16);
    c.bench_function("mlkit_knn_predict_2048x22", |b| {
        b.iter(|| black_box(knn_case(&knn, &queries)))
    });
}

fn bench_pca(c: &mut Criterion) {
    let rows = pca_rows();
    c.bench_function("mlkit_pca_fit_variance_64x22", |b| {
        b.iter(|| black_box(pca_case(&rows)))
    });
}

fn bench_exp_fit(c: &mut Criterion) {
    let (xs, ys) = exp_points();
    c.bench_function("mlkit_fit_exponential_12pts", |b| {
        b.iter(|| black_box(exp_fit_case(&xs, &ys)))
    });
}

fn bench_loocv(c: &mut Criterion) {
    c.bench_function("mlkit_loocv_fig17_campaign", |b| {
        b.iter(|| black_box(loocv_campaign()))
    });
}

criterion_group!(
    benches,
    bench_matmul,
    bench_knn,
    bench_pca,
    bench_exp_fit,
    bench_loocv
);

// ---------------------------------------------------------------------------
// Median recorder for results/BENCH_mlkit.json.

/// Median seconds per call of `f` over `samples` timed samples of `iters`
/// calls each (after one warm-up sample).
fn median_secs<R>(iters: usize, samples: usize, mut f: impl FnMut() -> R) -> f64 {
    for _ in 0..iters {
        black_box(f());
    }
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let started = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            started.elapsed().as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    per_iter[per_iter.len() / 2]
}

/// Runs every case once through the median recorder, in a fixed order.
fn recorded_cases() -> Vec<(&'static str, f64)> {
    let mut cases: Vec<(&'static str, f64)> = Vec::new();
    {
        let a = dense(64, 64, 1);
        let b = dense(64, 64, 2);
        cases.push(("matmul_64x64", median_secs(200, 15, || matmul_case(&a, &b))));
    }
    {
        let knn = knn_fixture(2048);
        let queries = knn_queries(16);
        cases.push((
            "knn_predict_2048x22",
            median_secs(50, 15, || knn_case(&knn, &queries)),
        ));
    }
    {
        let rows = pca_rows();
        cases.push((
            "pca_fit_variance_64x22",
            median_secs(20, 15, || pca_case(&rows)),
        ));
    }
    {
        let (xs, ys) = exp_points();
        cases.push((
            "fit_exponential_12pts",
            median_secs(200, 15, || exp_fit_case(&xs, &ys)),
        ));
    }
    cases.push(("loocv_fig17_campaign", median_secs(2, 9, loocv_campaign)));
    cases
}

/// Serialises one run's medians: one `{"name":...,"median_secs":...}` per
/// line inside a `cases` array.
fn medians_json(cases: &[(&str, f64)]) -> String {
    let mut out = String::from("{\"cases\":[\n");
    for (i, (name, secs)) in cases.iter().enumerate() {
        out.push_str(&format!(
            "{{\"name\":{},\"median_secs\":{}}}{}\n",
            bench_suite::report::json_str(name),
            bench_suite::report::json_num(*secs),
            if i + 1 < cases.len() { "," } else { "" }
        ));
    }
    out.push_str("]}\n");
    out
}

/// Pulls `(name, median_secs)` pairs back out of a baseline file written
/// by [`medians_json`]. Line-oriented on purpose: no JSON dependency.
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(rest) = line.trim().strip_prefix("{\"name\":\"") else {
            continue;
        };
        let Some((name, rest)) = rest.split_once("\",\"median_secs\":") else {
            continue;
        };
        let value = rest.trim_end_matches(['}', ',', ' ']);
        if let Ok(secs) = value.parse::<f64>() {
            out.push((name.to_string(), secs));
        }
    }
    out
}

fn write_report(baseline_path: &str, cases: &[(&str, f64)]) {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("mlkit bench: cannot read baseline {baseline_path}: {e}");
            return;
        }
    };
    let before = parse_baseline(&text);
    let mut out = String::from("{\"cases\":[\n");
    let mut first = true;
    for (name, after) in cases {
        let Some((_, before_secs)) = before.iter().find(|(n, _)| n == name) else {
            continue;
        };
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":{},\"before_secs\":{},\"after_secs\":{},\"speedup\":{}}}",
            bench_suite::report::json_str(name),
            bench_suite::report::json_num(*before_secs),
            bench_suite::report::json_num(*after),
            bench_suite::report::json_num(before_secs / after.max(1e-15)),
        ));
    }
    out.push_str("\n]}\n");
    // Anchor at the workspace root: cargo runs benches with the *package*
    // directory as cwd, but every other artifact lands in the top-level
    // `results/`.
    let results = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    match bench_suite::fsutil::atomic_write_in(&results, "BENCH_mlkit.json", &out) {
        Ok(path) => println!("mlkit record written to {}", path.display()),
        Err(e) => eprintln!("mlkit bench: cannot write results/BENCH_mlkit.json: {e}"),
    }
}

fn main() {
    let record_out = std::env::var("SPARK_MOE_MLKIT_OUT").ok();
    let baseline = std::env::var("SPARK_MOE_MLKIT_BASELINE").ok();
    if record_out.is_none() && baseline.is_none() {
        benches();
        return;
    }
    let cases = recorded_cases();
    for (name, secs) in &cases {
        println!("{name}: median {:.3} µs", secs * 1e6);
    }
    if let Some(path) = record_out {
        let json = medians_json(&cases);
        if let Err(e) =
            bench_suite::fsutil::atomic_write(std::path::Path::new(&path), json.as_bytes())
        {
            eprintln!("mlkit bench: cannot write {path}: {e}");
        } else {
            println!("mlkit medians written to {path}");
        }
    }
    if let Some(path) = baseline {
        write_report(&path, &cases);
    }
}
