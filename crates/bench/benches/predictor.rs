//! Criterion micro-benchmarks for the runtime-critical prediction path:
//! feature projection + expert selection + two-point calibration — the
//! per-application work the dispatcher does before it can co-locate.

use colocate::predictors::{MemoryPredictor, MoePolicy};
use colocate::profiling::{profile_app, ProfilingConfig};
use colocate::training::{train_system, TrainingConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use simkit::SimRng;
use sparklite::ClusterSpec;
use std::hint::black_box;
use workloads::Catalog;

fn bench_prediction(c: &mut Criterion) {
    let catalog = Catalog::paper();
    let testbed = ClusterSpec::paper_cluster();
    let mut rng = SimRng::seed_from(1);
    let system = train_system(&catalog, &TrainingConfig::default(), &mut rng).unwrap();
    let moe = MoePolicy::new(system);
    let bench = catalog.by_name("SB.TriangleCount").unwrap();
    let (profile, _) = profile_app(
        bench,
        30.0,
        testbed.nodes,
        testbed.node.ram_gb,
        &ProfilingConfig::default(),
        &mut rng,
    );

    c.bench_function("moe_select_and_calibrate", |b| {
        b.iter(|| {
            let prediction = moe.predict(black_box(&profile)).unwrap();
            black_box(prediction.model.footprint_gb(8.0))
        })
    });

    c.bench_function("offline_training_16_benchmarks", |b| {
        b.iter(|| {
            let mut rng = SimRng::seed_from(2);
            black_box(train_system(&catalog, &TrainingConfig::default(), &mut rng).unwrap())
        })
    });
}

criterion_group!(benches, bench_prediction);
criterion_main!(benches);
