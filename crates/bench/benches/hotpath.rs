//! Hot-path micro-benchmarks: the per-event costs every campaign binary
//! multiplies by thousands of schedule mixes.
//!
//! Four groups, matching the zero-allocation work on the inner loop:
//!
//! * **event queue churn** — push/cancel/pop against `simkit::EventQueue`
//!   (the slab-backed lifecycle bookkeeping vs the old `HashSet` pair);
//! * **monitor query storm** — repeated `windowed_cpu`/`windowed_memory`
//!   reads between observations (memoized window means vs deque rescans);
//! * **engine step at 4/16/40 nodes** — one `next_completion` + `advance`
//!   pair per iteration (the rate cache vs a fresh `BTreeMap` per call);
//! * **end-to-end mix replay** — one full L5 Oracle schedule, the unit the
//!   campaign runners parallelise over.
//!
//! Besides the Criterion rows, the harness can record medians for
//! `results/BENCH_hotpath.json` (see the README's "Hot-path benches"):
//!
//! * `SPARK_MOE_HOTPATH_OUT=<path>` — write this run's medians to `<path>`
//!   (run this on the *before* commit);
//! * `SPARK_MOE_HOTPATH_BASELINE=<path>` — read a baseline written by the
//!   above and emit `results/BENCH_hotpath.json` with before/after medians
//!   and speedups via the atomic report writer;
//! * `SPARK_MOE_FIG06_SECS=<secs>` — optionally fold an externally timed
//!   `fig06_overall` wall clock into the record.

use criterion::{criterion_group, Criterion};
use mlkit::regression::{CurveFamily, FittedCurve};
use simkit::{EventQueue, SimRng, SimTime};
use sparklite::app::AppSpec;
use sparklite::cluster::ClusterSpec;
use sparklite::engine::ClusterEngine;
use sparklite::monitor::{MonitorConfig, ResourceMonitor};
use sparklite::perf::InterferenceModel;
use std::hint::black_box;
use std::time::Instant;

const QUEUE_EVENTS: usize = 4096;
const STORM_QUERIES: usize = 4096;

/// One churn round: schedule a pseudo-random event population, cancel a
/// third of it, drain the rest.
fn event_queue_round() -> usize {
    let mut q = EventQueue::with_capacity(QUEUE_EVENTS);
    let mut ids = Vec::with_capacity(QUEUE_EVENTS);
    for i in 0..QUEUE_EVENTS {
        let at = SimTime::from_secs(((i * 2_654_435_761) % QUEUE_EVENTS) as f64);
        ids.push(q.push(at, i));
    }
    for id in ids.iter().skip(1).step_by(3) {
        q.cancel(*id);
    }
    let mut sum = 0usize;
    while let Some((_, e)) = q.pop() {
        sum += e;
    }
    sum
}

fn steady_app(name: &str, input_gb: f64, cpu: f64) -> AppSpec {
    AppSpec {
        name: name.into(),
        input_gb,
        rate_gb_per_s: 1.0,
        cpu_util: cpu,
        memory_curve: FittedCurve {
            family: CurveFamily::Linear,
            m: 0.02,
            b: 2.0,
        },
        footprint_noise_sd: 0.0,
    }
}

/// An engine with two live executors per node, none of which completes
/// within the benchmark horizon.
fn loaded_engine(nodes: usize) -> ClusterEngine {
    let mut eng = ClusterEngine::new(ClusterSpec::small(nodes), InterferenceModel::default());
    let node_ids = eng.cluster().node_ids();
    for (i, &node) in node_ids.iter().enumerate() {
        for j in 0..2 {
            let app = eng.submit(steady_app(
                &format!("app{i}_{j}"),
                1_000.0,
                0.3 + 0.05 * j as f64,
            ));
            eng.spawn_executor(app, node, 500.0, 14.0)
                .expect("spawn fits")
                .expect("input available");
        }
    }
    eng
}

/// One engine step: the `next_completion` + `advance` pair the scheduler's
/// event loop performs per iteration. `dt` is tiny so the executor
/// population is stable across millions of steps.
fn engine_step(eng: &mut ClusterEngine) -> f64 {
    let (dt, _) = eng.next_completion().expect("executors live");
    eng.advance(1e-7);
    dt
}

/// A monitor whose windows hold a full complement of reports.
fn warm_monitor(nodes: usize) -> (ResourceMonitor, ClusterEngine) {
    let eng = loaded_engine(nodes);
    let config = MonitorConfig {
        window_secs: 300.0,
        report_period_secs: 30.0,
    };
    let mut monitor = ResourceMonitor::new(nodes, config);
    for k in 0..=10 {
        monitor.observe(&eng, 30.0 * k as f64);
    }
    (monitor, eng)
}

/// One query storm: every node's windowed CPU and memory read
/// `STORM_QUERIES / nodes` times, as placement rounds do between
/// observations.
fn monitor_storm(monitor: &ResourceMonitor, eng: &ClusterEngine) -> f64 {
    let nodes = eng.cluster().node_ids();
    let per_node = STORM_QUERIES / nodes.len();
    let mut acc = 0.0;
    for &node in &nodes {
        for _ in 0..per_node {
            acc += monitor.windowed_cpu(node) + monitor.windowed_used_memory(node);
        }
    }
    acc
}

fn l5_mix() -> Vec<workloads::mixes::MixEntry> {
    let catalog = bench_suite::catalog();
    let mut rng = SimRng::seed_from(3);
    workloads::MixScenario::TABLE3[4].random_mix(catalog, &mut rng)
}

fn replay_l5_oracle(mix: &[workloads::mixes::MixEntry]) -> f64 {
    use colocate::scheduler::{run_schedule, PolicyKind, SchedulerConfig};
    let catalog = bench_suite::catalog();
    let config = SchedulerConfig::default();
    run_schedule(PolicyKind::Oracle, catalog, mix, None, &config, 3)
        .expect("schedule completes")
        .makespan_secs
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("hotpath_event_queue_churn", |b| {
        b.iter(|| black_box(event_queue_round()))
    });
}

fn bench_monitor_storm(c: &mut Criterion) {
    let (monitor, eng) = warm_monitor(16);
    c.bench_function("hotpath_monitor_query_storm", |b| {
        b.iter(|| black_box(monitor_storm(&monitor, &eng)))
    });
}

fn bench_engine_steps(c: &mut Criterion) {
    for nodes in [4usize, 16, 40] {
        let mut eng = loaded_engine(nodes);
        c.bench_function(&format!("hotpath_engine_step_{nodes}n"), |b| {
            b.iter(|| black_box(engine_step(&mut eng)))
        });
    }
}

fn bench_mix_replay(c: &mut Criterion) {
    let mix = l5_mix();
    c.bench_function("hotpath_mix_replay_L5_oracle", |b| {
        b.iter(|| black_box(replay_l5_oracle(&mix)))
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_monitor_storm,
    bench_engine_steps,
    bench_mix_replay
);

// ---------------------------------------------------------------------------
// Median recorder for results/BENCH_hotpath.json.

/// Median seconds per call of `f` over `samples` timed samples of
/// `iters` calls each (after one warm-up sample).
fn median_secs<R>(iters: usize, samples: usize, mut f: impl FnMut() -> R) -> f64 {
    for _ in 0..iters {
        black_box(f());
    }
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let started = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            started.elapsed().as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    per_iter[per_iter.len() / 2]
}

/// Runs every case once through the median recorder, in a fixed order.
fn recorded_cases() -> Vec<(&'static str, f64)> {
    let mut cases: Vec<(&'static str, f64)> = Vec::new();
    cases.push(("event_queue_churn", median_secs(8, 15, event_queue_round)));
    {
        let (monitor, eng) = warm_monitor(16);
        cases.push((
            "monitor_query_storm",
            median_secs(8, 15, || monitor_storm(&monitor, &eng)),
        ));
    }
    {
        let mut eng = loaded_engine(4);
        cases.push((
            "engine_step_4n",
            median_secs(2_000, 15, || engine_step(&mut eng)),
        ));
    }
    {
        let mut eng = loaded_engine(16);
        cases.push((
            "engine_step_16n",
            median_secs(500, 15, || engine_step(&mut eng)),
        ));
    }
    {
        let mut eng = loaded_engine(40);
        cases.push((
            "engine_step_40n",
            median_secs(200, 15, || engine_step(&mut eng)),
        ));
    }
    {
        let mix = l5_mix();
        cases.push((
            "mix_replay_L5_oracle",
            median_secs(1, 7, || replay_l5_oracle(&mix)),
        ));
    }
    cases
}

fn fig06_secs_env() -> Option<f64> {
    std::env::var("SPARK_MOE_FIG06_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
}

/// Serialises one run's medians: one `{"name":...,"median_secs":...}` per
/// line inside a `cases` array, plus the optional fig06 wall clock.
fn medians_json(cases: &[(&str, f64)], fig06: Option<f64>) -> String {
    let mut out = String::from("{\"cases\":[\n");
    for (i, (name, secs)) in cases.iter().enumerate() {
        out.push_str(&format!(
            "{{\"name\":{},\"median_secs\":{}}}{}\n",
            bench_suite::report::json_str(name),
            bench_suite::report::json_num(*secs),
            if i + 1 < cases.len() { "," } else { "" }
        ));
    }
    out.push_str("],\"fig06_wall_secs\":");
    out.push_str(&match fig06 {
        Some(v) => bench_suite::report::json_num(v),
        None => "null".to_string(),
    });
    out.push_str("}\n");
    out
}

/// Pulls `(name, median_secs)` pairs back out of a baseline file written
/// by [`medians_json`]. Line-oriented on purpose: no JSON dependency.
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(rest) = line.trim().strip_prefix("{\"name\":\"") else {
            continue;
        };
        let Some((name, rest)) = rest.split_once("\",\"median_secs\":") else {
            continue;
        };
        let value = rest.trim_end_matches(['}', ',', ' ']);
        if let Ok(secs) = value.parse::<f64>() {
            out.push((name.to_string(), secs));
        }
    }
    out
}

fn parse_baseline_fig06(text: &str) -> Option<f64> {
    let (_, rest) = text.split_once("\"fig06_wall_secs\":")?;
    rest.trim_end()
        .trim_end_matches('}')
        .trim()
        .parse::<f64>()
        .ok()
}

fn write_report(baseline_path: &str, cases: &[(&str, f64)]) {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("hotpath: cannot read baseline {baseline_path}: {e}");
            return;
        }
    };
    let before = parse_baseline(&text);
    let fig06_before = parse_baseline_fig06(&text);
    let fig06_after = fig06_secs_env();
    let mut out = String::from("{\"cases\":[\n");
    let mut first = true;
    for (name, after) in cases {
        let Some((_, before_secs)) = before.iter().find(|(n, _)| n == name) else {
            continue;
        };
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":{},\"before_secs\":{},\"after_secs\":{},\"speedup\":{}}}",
            bench_suite::report::json_str(name),
            bench_suite::report::json_num(*before_secs),
            bench_suite::report::json_num(*after),
            bench_suite::report::json_num(before_secs / after.max(1e-15)),
        ));
    }
    out.push_str("\n],\"fig06_wall_secs\":{\"before\":");
    out.push_str(&fig06_before.map_or("null".into(), bench_suite::report::json_num));
    out.push_str(",\"after\":");
    out.push_str(&fig06_after.map_or("null".into(), bench_suite::report::json_num));
    out.push_str("}}\n");
    // Anchor at the workspace root: cargo runs benches with the *package*
    // directory as cwd, but every other artifact lands in the top-level
    // `results/`.
    let results = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    match bench_suite::fsutil::atomic_write_in(&results, "BENCH_hotpath.json", &out) {
        Ok(path) => println!("hotpath record written to {}", path.display()),
        Err(e) => eprintln!("hotpath: cannot write results/BENCH_hotpath.json: {e}"),
    }
}

fn main() {
    let record_out = std::env::var("SPARK_MOE_HOTPATH_OUT").ok();
    let baseline = std::env::var("SPARK_MOE_HOTPATH_BASELINE").ok();
    if record_out.is_none() && baseline.is_none() {
        benches();
        return;
    }
    let cases = recorded_cases();
    for (name, secs) in &cases {
        println!("{name}: median {:.3} µs", secs * 1e6);
    }
    if let Some(path) = record_out {
        let json = medians_json(&cases, fig06_secs_env());
        if let Err(e) =
            bench_suite::fsutil::atomic_write(std::path::Path::new(&path), json.as_bytes())
        {
            eprintln!("hotpath: cannot write {path}: {e}");
        } else {
            println!("hotpath medians written to {path}");
        }
    }
    if let Some(path) = baseline {
        write_report(&path, &cases);
    }
}
