//! Crash-consistent result-file I/O.
//!
//! Every `results/` artifact a binary emits — CSV series, JSON records —
//! goes through [`atomic_write`]: a plain `std::fs::write` truncates the
//! destination before writing, so a kill (or full disk) mid-emission
//! destroys the previous good copy. The helper delegates to
//! [`simkit::journal::atomic_write`] (temp file in the target directory,
//! fsync, atomic rename, parent-directory fsync), so readers only ever
//! observe the old content or the complete new content.

use std::path::{Path, PathBuf};

/// Atomically replaces `path` with `contents`, creating parent
/// directories as needed.
///
/// # Errors
///
/// Propagates filesystem errors; on failure the previous file (if any)
/// is left untouched.
pub fn atomic_write(path: &Path, contents: &[u8]) -> std::io::Result<()> {
    simkit::journal::atomic_write(path, contents)
}

/// Atomically writes `<dir>/<name>` and returns the path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn atomic_write_in(dir: &Path, name: &str, contents: &str) -> std::io::Result<PathBuf> {
    let path = dir.join(name);
    atomic_write(&path, contents.as_bytes())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survives_overwrite_and_creates_dirs() {
        let dir = std::env::temp_dir()
            .join(format!("spark_moe_fsutil_{}", std::process::id()))
            .join("nested");
        let path = atomic_write_in(&dir, "out.json", "{\"v\":1}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\":1}");
        atomic_write(&path, b"{\"v\":2}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\":2}");
        let _ = std::fs::remove_dir_all(dir.parent().unwrap());
    }
}
