//! Fig. 7: CPU utilisation across the 40 nodes over time while scheduling
//! the fixed 30-application mix of Table 4, under Pairwise, Quasar and our
//! approach. The paper's heat maps show our approach keeping servers
//! busiest and finishing first; this binary prints a coarse ASCII heat map
//! plus per-scheduler summary lines.

use colocate::harness::{bin_trace, trained_system_for, RunConfig};
use colocate::scheduler::{run_schedule, PolicyKind};
use workloads::mixes::{resolve, table4_mix};

const TIME_BINS: usize = 24;

fn shade(load: f64) -> char {
    match load {
        l if l < 0.125 => ' ',
        l if l < 0.375 => '.',
        l if l < 0.625 => 'o',
        l if l < 0.875 => 'O',
        _ => '#',
    }
}

fn main() {
    let catalog = bench_suite::catalog();
    let config: RunConfig = bench_suite::paper_run_config();
    let mix = table4_mix(catalog);

    println!("Table 4 mix (submission order):");
    for (i, entry) in mix.iter().enumerate() {
        print!(
            "{:>2}:{:<24}",
            i + 1,
            format!("{} {}", resolve(catalog, entry).name(), entry.size)
        );
        if (i + 1) % 3 == 0 {
            println!();
        }
    }
    println!();

    for policy in [PolicyKind::Pairwise, PolicyKind::Quasar, PolicyKind::Moe] {
        let system = trained_system_for(policy, catalog, &config, 7).expect("training");
        let outcome = run_schedule(policy, catalog, &mix, system.as_ref(), &config.scheduler, 7)
            .expect("schedule");
        let bins = bin_trace(&outcome.trace, outcome.makespan_secs, TIME_BINS);
        let nodes = bins[0].len();

        println!(
            "\nFig. 7 — {}: makespan {:.0} min (shades: ' '<12.5%, '.'<37.5%, 'o'<62.5%, 'O'<87.5%, '#'>=87.5%)",
            outcome.policy,
            outcome.makespan_secs / 60.0
        );
        // One row per 4 nodes (averaged) to keep the map compact.
        for group in (0..nodes).step_by(4) {
            print!("nodes {group:>2}-{:<2} |", (group + 3).min(nodes - 1));
            for bin in &bins {
                let hi = (group + 4).min(nodes);
                let avg: f64 = bin[group..hi].iter().sum::<f64>() / (hi - group) as f64;
                print!("{}", shade(avg));
            }
            println!("|");
        }
        let overall: f64 = bins
            .iter()
            .map(|b| b.iter().sum::<f64>() / b.len() as f64)
            .sum::<f64>()
            / bins.len() as f64;
        println!("mean utilisation over the run: {:.0} %", overall * 100.0);
    }
    println!("\n(paper: our approach shows the densest map and the earliest finish)");
}
