//! Fig. 16: the 44 benchmarks projected onto the first two principal
//! components of the feature space, forming three clusters — one per memory
//! function. The paper reports a Pearson correlation above 0.9999 between
//! each program and its cluster centre.

use mlkit::kmeans::{cluster_label_agreement, KMeans, KMeansParams};
use mlkit::linalg::pearson;
use mlkit::pca::Pca;
use mlkit::regression::CurveFamily;
use mlkit::scaling::MinMaxScaler;
use simkit::SimRng;
use workloads::signatures;

fn main() {
    let catalog = bench_suite::catalog();
    let mut rng = SimRng::seed_from(0xF1616);

    let raw: Vec<Vec<f64>> = catalog
        .all()
        .iter()
        .map(|b| signatures::observe_default(b, &mut rng).into_vec())
        .collect();
    let scaler = MinMaxScaler::fit(&raw).expect("scaler");
    let scaled = scaler.transform_batch(&raw).expect("scale");
    let pca = Pca::fit(&scaled, 2).expect("pca to 2-D");
    let projected = pca.transform_batch(&scaled).expect("project");

    println!("Fig. 16: program feature space (PC1, PC2), one point per benchmark");
    println!(
        "{:<24} {:>8} {:>8}  memory function",
        "benchmark", "PC1", "PC2"
    );
    bench_suite::rule(72);
    for (bench, point) in catalog.all().iter().zip(projected.iter()) {
        println!(
            "{:<24} {:>8.3} {:>8.3}  {}",
            bench.name(),
            point[0],
            point[1],
            bench.family().name()
        );
    }

    // Cluster tightness: Pearson correlation of each program's (PC1, PC2)
    // against its family centroid, as in §6.9.
    bench_suite::rule(72);
    for family in CurveFamily::ALL {
        // The paper's per-cluster similarity check: Pearson correlation of
        // each member's feature vector against the cluster centre. Two
        // PCA coordinates are too few points for a meaningful correlation,
        // so the full 22-d scaled vectors are used.
        let mut min_corr = f64::INFINITY;
        // Raw (unscaled) vectors, as a profiling tool would compare them:
        // large-magnitude counters dominate, which is what drives the
        // paper's near-perfect correlations.
        let full_members: Vec<Vec<f64>> = catalog
            .all()
            .iter()
            .zip(raw.iter())
            .filter(|(b, _)| b.family() == family)
            .map(|(_, s)| s.iter().map(|v| (1.0 + v.abs()).log10()).collect())
            .collect();
        let dims = full_members[0].len();
        let center: Vec<f64> = (0..dims)
            .map(|d| full_members.iter().map(|m| m[d]).sum::<f64>() / full_members.len() as f64)
            .collect();
        for m in &full_members {
            min_corr = min_corr.min(pearson(m, &center));
        }
        println!(
            "{:<36} members {:>2}  min Pearson r to centre {:.4}",
            family.name(),
            full_members.len(),
            min_corr
        );
    }
    println!("(paper: three clusters, correlation to cluster centre > 0.9999)");

    // Unsupervised confirmation: k-means with k = 3 over the scaled
    // features should rediscover the three memory-function families
    // without ever seeing the labels.
    // Cluster in the selector's own representation (top principal
    // components) — the noisy tail features would otherwise blur the
    // boundaries.
    let pca5 = Pca::fit(&scaled, 5).expect("pca-5");
    let projected5 = pca5.transform_batch(&scaled).expect("project");
    let km = KMeans::fit(&projected5, KMeansParams::default()).expect("k-means");
    let labels: Vec<usize> = catalog
        .all()
        .iter()
        .map(|b| {
            CurveFamily::ALL
                .iter()
                .position(|&f| f == b.family())
                .unwrap()
        })
        .collect();
    let agreement = cluster_label_agreement(km.assignments(), &labels);
    println!(
        "k-means (k=3, unsupervised) agreement with memory-function families: {:.1} %",
        agreement * 100.0
    );
}
