//! Fig. 16: the 44 benchmarks projected onto the first two principal
//! components of the feature space, forming three clusters — one per memory
//! function. The paper reports a Pearson correlation above 0.9999 between
//! each program and its cluster centre.

use bench_suite::mlcamp;

fn main() -> Result<(), mlcamp::CampaignError> {
    let report = mlcamp::fig16_report(bench_suite::catalog())?;
    print!("{report}");
    Ok(())
}
