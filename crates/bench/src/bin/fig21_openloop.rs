//! Fig. 21 (extension): open-system streaming under overload — tail job
//! slowdown (p50/p95/p99), queue depth, shed/abstain counts and OOM kills
//! for the admission-controlled MoE service against uncontrolled
//! open-system baselines, as the offered load rises past capacity.
//!
//! Jobs arrive from a seeded Poisson [`ArrivalPlan`](simkit::arrivals::ArrivalPlan)
//! at `load × capacity`, where capacity is measured from the job classes'
//! mean isolated time. Each load level keeps the *expected job count*
//! constant by shrinking the horizon, so higher load means the same work
//! crammed into less time. A full-intensity fault storm — spot
//! preemptions plus heavy prediction noise delivered across the whole
//! horizon — is replayed identically against every entry.
//!
//! The stage is a 2-node edge slice running memory-hungry 100 GB
//! linear-family jobs: the one regime where an uncontrolled open system
//! genuinely pages itself into OOM kills (wider clusters dilute a
//! mispredicted job's executors until swap absorbs the overshoot, which
//! demonstrates nothing). Admission booking against RAM+swap keeps two
//! jobs in flight, the shed watermark drops the unserviceable excess of
//! a 3× storm, and the circuit breaker covers OOM bursts — see
//! `AdmissionConfig::controlled`.
//!
//! Env knobs: `SPARK_MOE_OPENLOOP_JOBS` (expected arrivals per
//! replication, default 18), `SPARK_MOE_OPENLOOP_REPS` (replications per
//! load, default 3).

use bench_suite::csv::{csv_dir, num, CsvTable};
use colocate::harness::{isolated_times_custom, ChaosSpec, RunConfig};
use colocate::scheduler::{PolicyKind, ResilienceConfig, SchedulerConfig};
use colocate::service::{evaluate_openloop, AdmissionConfig, OpenLoopEntry, OpenLoopSpec};
use simkit::arrivals::ArrivalProcess;
use sparklite::cluster::ClusterSpec;

const LOADS: [f64; 3] = [0.5, 1.5, 3.0];
const BASE_SEED: u64 = 42;

fn entries() -> Vec<OpenLoopEntry> {
    vec![
        OpenLoopEntry {
            label: "admission (ours)",
            policy: PolicyKind::Moe,
            admission: AdmissionConfig::controlled(),
            resilience: ResilienceConfig::self_healing(),
        },
        OpenLoopEntry {
            label: "no admission (self-healing)",
            policy: PolicyKind::Moe,
            admission: AdmissionConfig::default(),
            resilience: ResilienceConfig::self_healing(),
        },
        OpenLoopEntry {
            label: "no admission (plain)",
            policy: PolicyKind::Moe,
            admission: AdmissionConfig::default(),
            resilience: ResilienceConfig::default(),
        },
    ]
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

fn main() {
    let catalog = bench_suite::catalog();
    // A 2-node slice of paper-spec hardware: dense enough that a
    // mispredicted 100 GB job concentrates its executors instead of
    // diluting them across the cluster — the regime where co-location
    // can actually kill.
    let config = RunConfig {
        scheduler: SchedulerConfig {
            cluster: ClusterSpec::small(2),
            ..SchedulerConfig::default()
        },
        ..bench_suite::paper_run_config()
    };
    let expected_jobs = env_usize("SPARK_MOE_OPENLOOP_JOBS", 18);
    let replications = env_usize("SPARK_MOE_OPENLOOP_REPS", 3);
    let entries = entries();

    // Linear-family, low-CPU classes: the CPU guard admits several per
    // host, so memory prediction alone decides whether a node pages —
    // the same universe `tests/failure_injection.rs` uses to prove OOMs
    // reachable.
    let job_classes: Vec<(usize, f64)> = [
        ("SP.NaiveBayes", 100.0),
        ("BDB.NaivesBayes", 100.0),
        ("HB.Bayes", 100.0),
        ("SP.Pearson", 100.0),
    ]
    .iter()
    .map(|&(name, gb)| {
        let b = catalog.by_name(name).expect("catalog benchmark");
        (b.index(), gb)
    })
    .collect();

    // Service capacity from the classes' mean isolated time: 1/mean_iso
    // jobs per second is what a serialised cluster sustains; co-location
    // raises that, so load 3.0 is a genuine overload storm.
    let iso = isolated_times_custom(catalog, &job_classes, &config.scheduler, BASE_SEED)
        .expect("isolated baselines");
    let mean_iso = iso.iter().sum::<f64>() / iso.len() as f64;
    // Full-intensity chaos with heavy prediction noise struck anywhere in
    // the horizon (`noise_window_frac: 1.0`): an open system fills up over
    // time, so confining mispredictions to the opening instants — the
    // closed-loop default — would let every storm land on an empty
    // cluster.
    let chaos = ChaosSpec {
        intensity: 1.0,
        spot_rate: 0.5,
        noise_sd: 1.5,
        noise_window_frac: 1.0,
        ..ChaosSpec::default()
    };

    println!(
        "Fig. 21: open-system streaming, {} job classes, ~{expected_jobs} arrivals/rep, \
         {replications} reps/load, fault intensity {:.1}",
        job_classes.len(),
        chaos.intensity
    );
    println!(
        "capacity estimate: mean isolated time {:.0} s -> {:.4} jobs/s",
        mean_iso,
        1.0 / mean_iso
    );

    let mut all_stats = Vec::new();
    for load in LOADS {
        let rate = load / mean_iso;
        let horizon = expected_jobs as f64 * mean_iso / load;
        let spec = OpenLoopSpec {
            process: ArrivalProcess::Poisson { rate_per_sec: rate },
            horizon_secs: horizon,
            tenants: 3,
            tenant_weights: Vec::new(),
            job_classes: job_classes.clone(),
            max_jobs: expected_jobs * 2,
            chaos,
            replications,
        };
        let stats = evaluate_openloop(&entries, catalog, &config, &spec, BASE_SEED)
            .expect("open-loop campaign");
        all_stats.push((load, stats));
    }

    println!("\n(a) job slowdown (turnaround / isolated)  —  p50 / p95 / p99");
    print!("{:<6}", "load");
    for e in &entries {
        print!(" {:>30}", e.label);
    }
    println!();
    for (load, stats) in &all_stats {
        print!("{load:<6.1}");
        for s in &stats.per_entry {
            print!(
                " {:>8.2} {:>9.2} {:>11.2}",
                s.slowdown_p50, s.slowdown_p95, s.slowdown_p99
            );
        }
        println!();
    }

    println!("\n(b) robustness counters (summed over replications)");
    println!(
        "{:<6} {:<28} {:>6} {:>6} {:>6} {:>6} {:>7} {:>7} {:>6} {:>7} {:>8}",
        "load",
        "entry",
        "arriv",
        "done",
        "shed",
        "ooms",
        "defer",
        "abstain",
        "trips",
        "maxQ",
        "meanQ"
    );
    for (load, stats) in &all_stats {
        for s in &stats.per_entry {
            println!(
                "{:<6.1} {:<28} {:>6} {:>6} {:>6} {:>6} {:>7} {:>7} {:>6} {:>7} {:>8.2}",
                load,
                s.label,
                s.arrivals,
                s.finished,
                s.shed,
                s.oom_kills,
                s.deferrals,
                s.abstain_placements,
                s.breaker_trips,
                s.max_queue_depth,
                s.mean_queue_depth
            );
        }
    }

    println!("\n(c) fault delivery and self-healing (summed over replications)");
    println!(
        "{:<6} {:<28} {:>6} {:>6} {:>6} {:>6} {:>7} {:>6} {:>6}",
        "load", "entry", "nodeX", "execX", "spot", "drain", "retries", "quar", "fallbk"
    );
    for (load, stats) in &all_stats {
        for s in &stats.per_entry {
            let f = &s.faults;
            println!(
                "{:<6.1} {:<28} {:>6} {:>6} {:>6} {:>6} {:>7} {:>6} {:>6}",
                load,
                s.label,
                f.node_crashes,
                f.executor_crashes,
                f.spot_preemptions,
                f.drains,
                f.retries,
                f.quarantines,
                f.isolated_fallbacks
            );
        }
    }

    if let Some(dir) = csv_dir() {
        let mut table = CsvTable::new([
            "load_factor",
            "entry",
            "arrivals",
            "finished",
            "shed",
            "slowdown_p50",
            "slowdown_p95",
            "slowdown_p99",
            "oom_kills",
            "deferrals",
            "abstain_placements",
            "breaker_trips",
            "max_queue_depth",
            "mean_queue_depth",
        ]);
        for (load, stats) in &all_stats {
            for s in &stats.per_entry {
                table.push([
                    num(*load),
                    s.label.to_string(),
                    s.arrivals.to_string(),
                    s.finished.to_string(),
                    s.shed.to_string(),
                    num(s.slowdown_p50),
                    num(s.slowdown_p95),
                    num(s.slowdown_p99),
                    s.oom_kills.to_string(),
                    s.deferrals.to_string(),
                    s.abstain_placements.to_string(),
                    s.breaker_trips.to_string(),
                    s.max_queue_depth.to_string(),
                    num(s.mean_queue_depth),
                ]);
            }
        }
        if let Ok(path) = table.write_to(&dir, "fig21_openloop") {
            println!("\nCSV series written to {}", path.display());
        }
        let json = bench_suite::report::openloop_stats_json(&all_stats);
        if let Ok(path) = bench_suite::fsutil::atomic_write_in(&dir, "BENCH_openloop.json", &json) {
            println!("JSON record written to {}", path.display());
        }
    }

    // Headline: what admission control buys in the overload storm.
    let (load, storm) = all_stats.last().expect("at least one load");
    let ours = &storm.per_entry[0];
    let base = &storm.per_entry[1];
    println!(
        "\nHeadline at load {load:.1}x (fault intensity {:.1}):",
        chaos.intensity
    );
    println!(
        "  admission vs no-admission:  p99 slowdown {:.2} vs {:.2}, OOM kills {} vs {}",
        ours.slowdown_p99, base.slowdown_p99, ours.oom_kills, base.oom_kills
    );
    let better = ours.slowdown_p99 < base.slowdown_p99 && ours.oom_kills < base.oom_kills;
    println!(
        "  overload robustness criterion (p99 AND OOMs strictly lower): {}",
        if better { "MET" } else { "NOT MET" }
    );
}
