//! Fig. 11: average time spent on feature extraction and model calibration
//! relative to total task execution time, per runtime scenario L1..L10.
//! The paper measures ~5 % (feature extraction) + ~8 % (calibration), and
//! stresses that profiling runs contribute to the final output.

use colocate::harness::{isolated_times, trained_system_for, RunConfig};
use colocate::scheduler::{run_schedule, PolicyKind};
use simkit::SimRng;
use workloads::MixScenario;

fn main() {
    let catalog = bench_suite::catalog();
    let config: RunConfig = bench_suite::paper_run_config();
    let mixes = bench_suite::mixes_per_scenario().min(5);
    let system = trained_system_for(PolicyKind::Moe, catalog, &config, 11)
        .expect("training")
        .expect("moe needs a system");

    println!("Fig. 11: profiling overhead per scenario (fractions of execution time)");
    println!(
        "{:<5} {:>14} {:>14} {:>16}",
        "", "feature (%)", "calibration (%)", "avg runtime (min)"
    );
    bench_suite::rule(56);
    let mut feat_all = 0.0;
    let mut calib_all = 0.0;
    for scenario in MixScenario::TABLE3 {
        let mut rng = SimRng::seed_from(1100 + scenario.label as u64);
        let mut feature = 0.0;
        let mut calibration = 0.0;
        let mut runtime = 0.0;
        for m in 0..mixes {
            let mix = scenario.random_mix(catalog, &mut rng);
            let outcome = run_schedule(
                PolicyKind::Moe,
                catalog,
                &mix,
                Some(&system),
                &config.scheduler,
                1100 + m as u64,
            )
            .expect("schedule");
            // Fractions of *execution* time (the per-app isolated work),
            // which is what Fig. 11 stacks — turnaround would double-count
            // queueing delay.
            let iso = isolated_times(catalog, &mix, &config.scheduler, 1100 + m as u64)
                .expect("isolated baselines");
            let total_exec: f64 = iso.iter().sum();
            let f: f64 = outcome
                .per_app
                .iter()
                .map(|a| a.profiling.feature_secs)
                .sum();
            let c: f64 = outcome
                .per_app
                .iter()
                .map(|a| a.profiling.calibration_secs)
                .sum();
            feature += f / total_exec;
            calibration += c / total_exec;
            runtime += outcome.per_app.iter().map(|a| a.finished_at).sum::<f64>()
                / outcome.per_app.len() as f64;
        }
        let n = mixes as f64;
        println!(
            "{:<5} {:>14.1} {:>14.1} {:>16.1}",
            scenario.name(),
            feature / n * 100.0,
            calibration / n * 100.0,
            runtime / n / 60.0
        );
        feat_all += feature / n;
        calib_all += calibration / n;
    }
    bench_suite::rule(56);
    println!(
        "mean: feature {:.1} % (paper ~5 %), calibration {:.1} % (paper ~8 %)",
        feat_all / 10.0 * 100.0,
        calib_all / 10.0 * 100.0
    );
    println!("(profiled data contributes to the job's output: cycles are not wasted)");
}
