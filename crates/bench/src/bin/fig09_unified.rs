//! Fig. 9: our mixture-of-experts vs unified single-model baselines —
//! one fixed regression family for every application (Linear, Exponential,
//! Napierian logarithmic) or one monolithic ANN. The paper finds the ANN
//! the best single model, with our approach ahead of all of them.

use bench_suite::csv::{csv_dir, num, CsvTable};
use colocate::harness::evaluate_scenario_multi_checkpointed;
use colocate::scheduler::PolicyKind;
use simkit::stats::summary::geometric_mean;
use workloads::MixScenario;

fn main() {
    let catalog = bench_suite::catalog();
    let config = bench_suite::paper_run_config();
    let mixes = bench_suite::mixes_per_scenario();
    let policies = [
        PolicyKind::UnifiedLinear,
        PolicyKind::UnifiedExponential,
        PolicyKind::UnifiedLog,
        PolicyKind::UnifiedAnn,
        PolicyKind::Moe,
    ];
    let headers = ["Linear", "Expon.", "NapLog", "ANN", "Ours"];

    println!("Fig. 9 (a): normalized STP — unified models vs ours ({mixes} mixes/scenario)");
    print!("{:<5}", "");
    for h in headers {
        print!(" {h:>8}");
    }
    println!();
    let mut all = Vec::new();
    for scenario in MixScenario::TABLE3 {
        let ckpt = bench_suite::checkpoint_for(&format!("fig09_{}", scenario.name()));
        let stats = evaluate_scenario_multi_checkpointed(
            &policies,
            scenario,
            catalog,
            &config,
            mixes,
            91,
            ckpt.as_ref(),
        )
        .expect("campaign");
        print!("{:<5}", scenario.name());
        for s in &stats.per_policy {
            print!(" {:>8.2}", s.stp_mean);
        }
        println!();
        all.push(stats);
    }
    bench_suite::rule(50);
    print!("geo  ");
    let mut geo = Vec::new();
    for pi in 0..policies.len() {
        let g = geometric_mean(
            &all.iter()
                .map(|s| s.per_policy[pi].stp_mean)
                .collect::<Vec<_>>(),
        );
        geo.push(g);
        print!(" {g:>8.2}");
    }
    println!();

    println!("\nFig. 9 (b): ANTT reduction (%)");
    print!("{:<5}", "");
    for h in headers {
        print!(" {h:>8}");
    }
    println!();
    for stats in &all {
        print!("{:<5}", stats.scenario.name());
        for s in &stats.per_policy {
            print!(" {:>8.1}", s.antt_mean);
        }
        println!();
    }
    bench_suite::rule(50);
    println!(
        "\npaper shape: ANN best among single models; ours above all. \
         measured: ours {:.2} vs best-unified {:.2}",
        geo[4],
        geo[..4].iter().cloned().fold(f64::NEG_INFINITY, f64::max)
    );

    if let Some(dir) = csv_dir() {
        let mut table = CsvTable::new(["scenario", "policy", "stp_mean", "antt_reduction_pct"]);
        for stats in &all {
            for (pi, s) in stats.per_policy.iter().enumerate() {
                table.push([
                    stats.scenario.name(),
                    headers[pi].to_string(),
                    num(s.stp_mean),
                    num(s.antt_mean),
                ]);
            }
        }
        if let Ok(path) = table.write_to(&dir, "fig09_unified") {
            println!("CSV series written to {}", path.display());
        }
    }
}
