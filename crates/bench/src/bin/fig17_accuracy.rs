//! Fig. 17: predicted vs measured memory footprints for the 16 HiBench and
//! BigDataBench benchmarks (~280 GB inputs), under leave-one-out
//! cross-validation. The paper reports errors under 5 % for most
//! benchmarks, with HB.PageRank, BDB.PageRank and BDB.Sort over-provisioned
//! by 8–12 %.
//!
//! The selection-cache footer goes to stderr so the pinned stdout report
//! stays byte identical across runs and worker counts.

use bench_suite::mlcamp;

fn main() -> Result<(), mlcamp::CampaignError> {
    let (report, hits, misses) =
        mlcamp::fig17_report_with_cache(bench_suite::catalog(), simkit::par::available_workers())?;
    print!("{report}");
    eprintln!("selection cache: {misses} misses, {hits} hits across 16 LOOCV folds");
    Ok(())
}
