//! Fig. 17: predicted vs measured memory footprints for the 16 HiBench and
//! BigDataBench benchmarks (~280 GB inputs), under leave-one-out
//! cross-validation. The paper reports errors under 5 % for most
//! benchmarks, with HB.PageRank, BDB.PageRank and BDB.Sort over-provisioned
//! by 8–12 %.

use colocate::predictors::{MemoryPredictor, MoePolicy};
use colocate::profiling::{profile_app, ProfilingConfig};
use colocate::training::{train_loocv, TrainingConfig};
use simkit::SimRng;

const INPUT_GB: f64 = 280.0;

fn main() {
    let catalog = bench_suite::catalog();
    let config = TrainingConfig::default();
    let profiling = ProfilingConfig::default();
    let mut rng = SimRng::seed_from(0xF1617);

    println!("Fig. 17: predicted vs measured footprint (GB), ~280 GB inputs, LOOCV");
    println!(
        "{:<20} {:>10} {:>10} {:>8}",
        "benchmark", "predicted", "measured", "err %"
    );
    bench_suite::rule(52);

    let mut errors = Vec::new();
    for bench in catalog.training_set() {
        let system =
            train_loocv(catalog, bench, &config, &mut rng).expect("leave-one-out training");
        let moe = MoePolicy::new(system);
        let (profile, _) = profile_app(bench, INPUT_GB, 40, 64.0, &profiling, &mut rng);
        let prediction = moe.predict(&profile).expect("prediction");
        let slice = profile.expected_slice_gb;
        let predicted = prediction.model.footprint_gb(slice);
        let measured = bench.true_footprint_gb(slice);
        let err = (predicted - measured) / measured * 100.0;
        errors.push(err.abs());
        println!(
            "{:<20} {predicted:>10.2} {measured:>10.2} {err:>+8.1}",
            bench.name()
        );
    }
    bench_suite::rule(52);
    let mean = errors.iter().sum::<f64>() / errors.len() as f64;
    let under5 = errors.iter().filter(|e| **e < 5.0).count();
    println!(
        "mean |error| {mean:.1} % — {under5}/16 under 5 % (paper: ~5 % average, most under 5 %)"
    );
}
