//! Dumps the 44-benchmark catalog: suite, memory-function family and
//! coefficients, CPU utilisation and nominal rate — the ground truth every
//! experiment measures predictors against.

fn main() {
    let catalog = bench_suite::catalog();
    println!(
        "{:<24} {:<34} {:>8} {:>8} {:>8} {:>10}",
        "benchmark", "memory function", "m", "b", "cpu %", "GB/s"
    );
    bench_suite::rule(98);
    for bench in catalog.all() {
        println!(
            "{:<24} {:<34} {:>8.3} {:>8.3} {:>8.0} {:>10.4}",
            bench.name(),
            bench.family().name(),
            bench.curve().m,
            bench.curve().b,
            bench.cpu_util() * 100.0,
            bench.rate_gb_per_s()
        );
    }
    bench_suite::rule(98);
    let training = catalog.training_set().len();
    println!(
        "{} benchmarks; {training} in the training suites (HiBench + BigDataBench)",
        catalog.len()
    );
}
