//! Fig. 4a: fraction of feature variance explained by each principal
//! component. The paper reports PC1 ≈ 71 %, PC2 ≈ 10 %, PC3 ≈ 7 %,
//! PC4 ≈ 4 %, PC5 ≈ 3 %, rest ≈ 5 %, with the top five covering 95 %.

use bench_suite::mlcamp;

fn main() -> Result<(), mlcamp::CampaignError> {
    let report = mlcamp::fig04_report(bench_suite::catalog())?;
    print!("{report}");
    Ok(())
}
