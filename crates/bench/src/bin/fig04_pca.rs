//! Fig. 4a: fraction of feature variance explained by each principal
//! component. The paper reports PC1 ≈ 71 %, PC2 ≈ 10 %, PC3 ≈ 7 %,
//! PC4 ≈ 4 %, PC5 ≈ 3 %, rest ≈ 5 %, with the top five covering 95 %.

use mlkit::pca::Pca;
use mlkit::scaling::MinMaxScaler;
use simkit::SimRng;
use workloads::signatures;

fn main() {
    let catalog = bench_suite::catalog();
    let mut rng = SimRng::seed_from(0xF164);

    let mut rows: Vec<Vec<f64>> = Vec::new();
    for bench in catalog.training_set() {
        for _ in 0..4 {
            rows.push(signatures::observe_default(bench, &mut rng).into_vec());
        }
    }
    let scaler = MinMaxScaler::fit(&rows).expect("non-empty rows");
    let scaled = scaler.transform_batch(&rows).expect("fixed arity");
    let full = Pca::fit(&scaled, 22).expect("full PCA");
    let ratios = full.explained_variance_ratio();

    println!("Fig. 4a: percentage of overall feature variance per PC");
    bench_suite::rule(40);
    let mut cumulative = 0.0;
    let mut covering_95 = None;
    for (i, r) in ratios.iter().enumerate() {
        cumulative += r;
        if covering_95.is_none() && cumulative >= 0.95 {
            covering_95 = Some(i + 1);
        }
        if i < 6 {
            println!(
                "PC{:<2} {:6.1} %   (cumulative {:5.1} %)",
                i + 1,
                r * 100.0,
                cumulative * 100.0
            );
        }
    }
    let rest: f64 = ratios.iter().skip(6).sum();
    println!("rest {:6.1} %", rest * 100.0);
    bench_suite::rule(40);
    println!(
        "components needed for 95 % variance: {} (paper: 5)",
        covering_95.unwrap_or(ratios.len())
    );
}
