//! Fig. 23 (extension): the prediction serving firehose — train once,
//! freeze the model into a checksummed artifact, reload it, and stream a
//! seeded firehose of synthetic feature observations through the scalar
//! per-request path and the whole-matrix batched path at batch sizes
//! 1/16/256/4096.
//!
//! Every batched selection is checked bit-for-bit against the scalar
//! oracle on every run — the equivalence verdict is part of the default
//! stdout. Wall-clock throughput/latency numbers are reported only on
//! explicit request (`SPARK_MOE_SERVING_TIMING=1`), so the default
//! stdout and `results/BENCH_serving.json` are byte-stable and the CI
//! bit-identity gate can `cmp` them across `SPARK_MOE_THREADS` values.
//!
//! Env knobs: `SPARK_MOE_SERVING_REQS` (firehose size, default
//! 2,000,000), `SPARK_MOE_SERVING_SEED` (default 42),
//! `SPARK_MOE_SERVING_TIMING=1` (opt-in wall-clock measurement).

use bench_suite::csv::{csv_dir, CsvTable};
use bench_suite::serving::{run_batched, run_scalar, ModeStats, BATCH_SIZES};
use colocate::serving::ModelArtifact;
use colocate::training::{train_system, TrainingConfig};
use simkit::SimRng;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn fmt_opt(v: Option<f64>, unit: &str) -> String {
    v.map_or_else(|| "-".to_string(), |x| format!("{x:.1}{unit}"))
}

fn main() {
    let catalog = bench_suite::catalog();
    let requests = env_usize("SPARK_MOE_SERVING_REQS", 2_000_000);
    let seed = env_u64("SPARK_MOE_SERVING_SEED", 42);
    let timing = std::env::var("SPARK_MOE_SERVING_TIMING").is_ok_and(|v| v == "1");

    println!("Fig. 23: prediction serving firehose — {requests} requests from seed {seed}");

    // Train once, then freeze + thaw through the model artifact: the
    // serving passes below all run on the *reloaded* predictor, so the
    // equivalence verdict covers the artifact round trip too.
    let mut rng = SimRng::seed_from(seed ^ 0x7EA1);
    let system = match train_system(catalog, &TrainingConfig::default(), &mut rng) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("training failed: {e}");
            std::process::exit(1);
        }
    };
    let artifact = match ModelArtifact::from_predictor(&system.predictor, &system.fitted_curves) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("artifact capture failed: {e}");
            std::process::exit(1);
        }
    };
    let encoded = artifact.encode();
    let served = match ModelArtifact::decode(&encoded).and_then(|a| a.into_predictor()) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("artifact reload failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "model artifact: {} bytes ({} experts, {} exemplars × {} components)",
        encoded.len(),
        artifact.expert_families.len(),
        artifact.knn_labels.len(),
        artifact.pca_eigenvalues.len(),
    );

    // Scalar pass: the per-request oracle (run on the original predictor,
    // so artifact reload is part of what the equivalence check verifies).
    let (oracle, scalar_stats) =
        match run_scalar(&system.predictor, catalog, seed, requests, timing) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("scalar pass failed: {e}");
                std::process::exit(1);
            }
        };

    let mut modes: Vec<ModeStats> = vec![scalar_stats];
    let mut identical = true;
    for batch in BATCH_SIZES {
        match run_batched(&served, catalog, seed, requests, batch, timing, &oracle) {
            Ok((stats, ok)) => {
                identical &= ok;
                modes.push(stats);
            }
            Err(e) => {
                eprintln!("batched pass (batch {batch}) failed: {e}");
                std::process::exit(1);
            }
        }
    }

    println!(
        "\n{:<10} {:>6} {:>14} {:>10} {:>10} {:>10}",
        "mode", "batch", "preds/s", "p50", "p95", "p99"
    );
    for s in &modes {
        println!(
            "{:<10} {:>6} {:>14} {:>10} {:>10} {:>10}",
            s.mode,
            s.batch,
            fmt_opt(s.preds_per_sec, ""),
            fmt_opt(s.p50_us, "us"),
            fmt_opt(s.p95_us, "us"),
            fmt_opt(s.p99_us, "us"),
        );
    }

    println!(
        "\nbatched == scalar (bitwise, {} requests × {} batch sizes): {}",
        requests,
        BATCH_SIZES.len(),
        if identical { "IDENTICAL" } else { "DIVERGED" }
    );
    if let (Some(b1), Some(b256)) = (
        modes.iter().find(|s| s.mode == "batched" && s.batch == 1),
        modes.iter().find(|s| s.mode == "batched" && s.batch == 256),
    ) {
        if let (Some(r1), Some(r256)) = (b1.preds_per_sec, b256.preds_per_sec) {
            if r1 > 0.0 {
                println!("throughput: batch 256 is {:.2}x batch 1", r256 / r1);
            }
        }
    }
    // Per-request latency footer — only under explicit timing, so the
    // default stdout stays a pure function of (seed, request count).
    if timing {
        for (label, pick) in [
            ("scalar", modes.iter().find(|s| s.mode == "scalar")),
            (
                "batch 256",
                modes.iter().find(|s| s.mode == "batched" && s.batch == 256),
            ),
        ] {
            if let Some(s) = pick {
                println!(
                    "latency {label}: p50 {} / p99 {} per request",
                    fmt_opt(s.p50_us, "us"),
                    fmt_opt(s.p99_us, "us")
                );
            }
        }
    }

    if let Some(dir) = csv_dir() {
        let mut table = CsvTable::new([
            "mode",
            "batch",
            "preds_per_sec",
            "p50_us",
            "p95_us",
            "p99_us",
        ]);
        for s in &modes {
            table.push([
                s.mode.to_string(),
                s.batch.to_string(),
                s.preds_per_sec
                    .map_or_else(String::new, |v| format!("{v:?}")),
                s.p50_us.map_or_else(String::new, |v| format!("{v:?}")),
                s.p95_us.map_or_else(String::new, |v| format!("{v:?}")),
                s.p99_us.map_or_else(String::new, |v| format!("{v:?}")),
            ]);
        }
        if let Ok(path) = table.write_to(&dir, "fig23_serving") {
            println!("\nCSV series written to {}", path.display());
        }
        let json =
            bench_suite::serving::serving_json(requests, seed, encoded.len(), identical, &modes);
        if let Ok(path) = bench_suite::fsutil::atomic_write_in(&dir, "BENCH_serving.json", &json) {
            println!("JSON record written to {}", path.display());
        }
    }

    if !identical {
        eprintln!("serving acceptance FAILED: batched selections diverged from the scalar oracle");
        std::process::exit(1);
    }
}
