//! Fig. 22 (extension): deterministic chaos search — sweep a seeded
//! budget of randomized episodes (fault plans × arrival plans × cluster
//! sizes × admission presets) through the scheduler and the open-system
//! service with the full invariant battery
//! ([`colocate::invariants::check_episode`]), and delta-debug every
//! violation down to a minimal reproducer that replays from a single
//! `(seed, episode)` pair.
//!
//! The default record (`results/BENCH_chaossearch.json`) is a pure
//! function of `(base seed, episode budget, shrink budget)`: episodes fan
//! out across worker threads but fold in episode order, and wall-clock
//! timing is reported only on explicit request — so the CI bit-identity
//! gate can `cmp` the artifact across `SPARK_MOE_THREADS` values, like
//! every other `BENCH_*.json`.
//!
//! Env knobs: `SPARK_MOE_CHAOS_EPISODES` (episode budget, default 64),
//! `SPARK_MOE_CHAOS_SEED` (base seed, default 42),
//! `SPARK_MOE_CHAOS_SHRINK` (checker budget per shrink, default 200),
//! `SPARK_MOE_CHAOS_TIMING=1` (opt-in episodes/sec measurement; makes the
//! record wall-clock-dependent), `SPARK_MOE_THREADS` (worker pool).

use bench_suite::csv::{csv_dir, CsvTable};
use bench_suite::report::chaossearch_json;
use colocate::harness::RunConfig;
use colocate::invariants::{chaos_search, preset_label, SearchConfig};
use std::time::Instant;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let catalog = bench_suite::catalog();
    let config = SearchConfig {
        episodes: env_usize("SPARK_MOE_CHAOS_EPISODES", 64),
        base_seed: env_u64("SPARK_MOE_CHAOS_SEED", 42),
        shrink_budget: env_usize("SPARK_MOE_CHAOS_SHRINK", 200),
        workers: RunConfig::default().effective_workers(),
        ..SearchConfig::default()
    };
    let timing = std::env::var("SPARK_MOE_CHAOS_TIMING").is_ok_and(|v| v == "1");

    // Worker count deliberately left out of the banner: the bit-identity
    // CI gate cmps this stdout across SPARK_MOE_THREADS values.
    println!(
        "Fig. 22: chaos search — {} episodes from seed {}, shrink budget {}",
        config.episodes, config.base_seed, config.shrink_budget
    );

    let started = Instant::now();
    let report = chaos_search(catalog, &config);
    let elapsed = started.elapsed().as_secs_f64();
    let episodes_per_sec = if timing && elapsed > 0.0 {
        Some(report.episodes as f64 / elapsed)
    } else {
        None
    };

    println!(
        "\nchecked {} episodes: {} violation(s) found",
        report.episodes,
        report.violations.len()
    );
    if let Some(eps) = episodes_per_sec {
        println!("throughput: {eps:.1} episodes/s ({elapsed:.2} s wall clock)");
    }

    if report.violations.is_empty() {
        println!("invariant battery: CLEAN over the swept budget");
    } else {
        println!(
            "\n{:<8} {:<12} {:<22} {:<24} {:>7} {:>7} {:>7}",
            "episode", "seed", "preset", "invariant", "faults", "arriv", "checks"
        );
        for v in &report.violations {
            println!(
                "{:<8} {:<12} {:<22} {:<24} {:>3}->{:<3} {:>3}->{:<3} {:>7}",
                v.index,
                v.original.seed,
                preset_label(v.original.preset),
                v.violation.invariant,
                v.original.faults.len(),
                v.shrink.episode.faults.len(),
                v.original.arrivals.len(),
                v.shrink.episode.arrivals.len(),
                v.shrink.checks,
            );
            println!("    {}", v.violation.detail);
            println!("    reproducer: {}", v.shrink.episode.to_json());
        }
    }

    if let Some(dir) = csv_dir() {
        let mut table = CsvTable::new([
            "episode_index",
            "seed",
            "preset",
            "invariant",
            "original_faults",
            "shrunk_faults",
            "original_arrivals",
            "shrunk_arrivals",
            "shrink_checks",
        ]);
        for v in &report.violations {
            table.push([
                v.index.to_string(),
                v.original.seed.to_string(),
                preset_label(v.original.preset).to_string(),
                v.violation.invariant.clone(),
                v.original.faults.len().to_string(),
                v.shrink.episode.faults.len().to_string(),
                v.original.arrivals.len().to_string(),
                v.shrink.episode.arrivals.len().to_string(),
                v.shrink.checks.to_string(),
            ]);
        }
        if let Ok(path) = table.write_to(&dir, "fig22_chaos_search") {
            println!("\nCSV series written to {}", path.display());
        }
        let json = chaossearch_json(&report, episodes_per_sec);
        if let Ok(path) =
            bench_suite::fsutil::atomic_write_in(&dir, "BENCH_chaossearch.json", &json)
        {
            println!("JSON record written to {}", path.display());
        }
    }

    // Headline: the acceptance bar is an all-clean sweep (every violation
    // found during development was fixed or pinned as a regression test).
    println!(
        "\nchaos-search acceptance (no unpinned invariant violations): {}",
        if report.violations.is_empty() {
            "MET"
        } else {
            "NOT MET"
        }
    );
}
