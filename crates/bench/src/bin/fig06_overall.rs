//! Fig. 6: normalized STP (a) and ANTT reduction (b) for Pairwise, Quasar,
//! Our Approach and Oracle across the Table 3 scenarios L1..L10.
//!
//! The paper's headline: our approach averages 8.69× STP and 49 % ANTT
//! reduction, 1.28×/1.68× better than Quasar, reaching 83.9 %/93.4 % of
//! the Oracle. Set `SPARK_MOE_MIXES` to raise the per-scenario mix count
//! toward the paper's ~100.

use bench_suite::csv::{csv_dir, num, CsvTable};
use colocate::harness::evaluate_scenario_multi_checkpointed;
use colocate::scheduler::PolicyKind;
use simkit::stats::summary::geometric_mean;
use workloads::MixScenario;

fn main() {
    let catalog = bench_suite::catalog();
    let config = bench_suite::paper_run_config();
    let mixes = bench_suite::mixes_per_scenario();
    let policies = [
        PolicyKind::Pairwise,
        PolicyKind::Quasar,
        PolicyKind::Moe,
        PolicyKind::Oracle,
    ];

    println!("Fig. 6 (a): normalized STP  —  mean [min, max] over {mixes} mixes/scenario");
    println!(
        "{:<5} {:>7}{:>17} {:>7}{:>17} {:>7}{:>17} {:>7}{:>17}",
        "", "Pairw", "", "Quasar", "", "Ours", "", "Oracle", ""
    );
    let mut all_stats = Vec::new();
    for scenario in MixScenario::TABLE3 {
        // With SPARK_MOE_CHECKPOINT_DIR set, each scenario sweep journals
        // its per-mix folds and resumes after an interruption.
        let ckpt = bench_suite::checkpoint_for(&format!("fig06_{}", scenario.name()));
        let stats = evaluate_scenario_multi_checkpointed(
            &policies,
            scenario,
            catalog,
            &config,
            mixes,
            42,
            ckpt.as_ref(),
        )
        .expect("scenario campaign");
        print!("{:<5}", scenario.name());
        for s in &stats.per_policy {
            print!(
                " {:>6.2} {:>16}",
                s.stp_mean,
                bench_suite::whisker(s.stp_min_max)
            );
        }
        println!();
        all_stats.push(stats);
    }
    bench_suite::rule(100);
    print!("geo  ");
    let mut geo = Vec::new();
    for pi in 0..policies.len() {
        let means: Vec<f64> = all_stats
            .iter()
            .map(|s| s.per_policy[pi].stp_mean)
            .collect();
        let g = geometric_mean(&means);
        geo.push(g);
        print!(" {g:>6.2} {:>16}", "");
    }
    println!();

    println!("\nFig. 6 (b): ANTT reduction (%)");
    println!(
        "{:<5} {:>8} {:>8} {:>8} {:>8}",
        "", "Pairwise", "Quasar", "Ours", "Oracle"
    );
    for stats in &all_stats {
        print!("{:<5}", stats.scenario.name());
        for s in &stats.per_policy {
            print!(" {:>8.1}", s.antt_mean);
        }
        println!();
    }
    bench_suite::rule(44);
    print!("mean ");
    let mut antt_means = Vec::new();
    for pi in 0..policies.len() {
        let m: f64 = all_stats
            .iter()
            .map(|s| s.per_policy[pi].antt_mean)
            .sum::<f64>()
            / all_stats.len() as f64;
        antt_means.push(m);
        print!(" {m:>8.1}");
    }
    println!();

    if let Some(dir) = csv_dir() {
        let mut table = CsvTable::new([
            "scenario",
            "policy",
            "stp_mean",
            "stp_min",
            "stp_max",
            "antt_reduction_pct",
        ]);
        for stats in &all_stats {
            for (pi, s) in stats.per_policy.iter().enumerate() {
                table.push([
                    stats.scenario.name(),
                    policies[pi].display_name().to_string(),
                    num(s.stp_mean),
                    num(s.stp_min_max.0),
                    num(s.stp_min_max.1),
                    num(s.antt_mean),
                ]);
            }
        }
        if let Ok(path) = table.write_to(&dir, "fig06_overall") {
            println!("\nCSV series written to {}", path.display());
        }
    }

    println!("\nHeadlines (paper → measured):");
    println!("  ours STP (geomean):          8.69x → {:.2}x", geo[2]);
    println!(
        "  ours vs Quasar STP:          1.28x → {:.2}x",
        geo[2] / geo[1]
    );
    println!(
        "  ours / Oracle STP:           83.9% → {:.1}%",
        geo[2] / geo[3] * 100.0
    );
    println!(
        "  ours ANTT reduction (mean):  49%   → {:.1}%",
        antt_means[2]
    );
    println!(
        "  ours / Oracle ANTT:          93.4% → {:.1}%",
        antt_means[2] / antt_means[3] * 100.0
    );
}
