//! Ablation study over the design choices DESIGN.md §6 calls out:
//!
//! 1. KNN vote size `k`;
//! 2. number of principal components kept by the selector;
//! 3. calibration sample fractions (the paper's 5 %/10 % choice);
//! 4. the reservation margin (§6.9's over-provisioning suggestion);
//! 5. the CPU-contention guard (§4.3's "aggregate load ≤ 100 %");
//! 6. the resource-monitor window (§4.2's 5-minute choice).
//!
//! Selector ablations report expert-selection accuracy on the 28 unseen
//! Spark-Perf/Spark-Bench benchmarks; runtime ablations report normalized
//! STP and OOM kills on an L8 (23-application) scenario.

use colocate::harness::{evaluate_scenario_multi_checkpointed, run_policy, RunConfig};
use colocate::profiling::ProfilingConfig;
use colocate::scheduler::PolicyKind;
use colocate::training::{family_expert_id, train_system, TrainingConfig};
use moe_core::selector::SelectorConfig;
use simkit::SimRng;
use sparklite::monitor::MonitorConfig;
use workloads::{signatures, Catalog, MixScenario, Suite};

fn selector_accuracy(catalog: &Catalog, config: &TrainingConfig, seed: u64) -> f64 {
    let mut rng = SimRng::seed_from(seed);
    let system = train_system(catalog, config, &mut rng).expect("training");
    let mut hits = 0;
    let mut total = 0;
    for bench in catalog.all() {
        if matches!(bench.suite(), Suite::SparkPerf | Suite::SparkBench) {
            for _ in 0..4 {
                let features = signatures::observe_default(bench, &mut rng);
                let sel = system.predictor.select(&features).expect("selection");
                total += 1;
                if sel.expert == family_expert_id(bench.family()) {
                    hits += 1;
                }
            }
        }
    }
    f64::from(hits) / f64::from(total) * 100.0
}

fn scenario_stp(config: &RunConfig, seed: u64) -> (f64, usize) {
    let catalog = bench_suite::catalog();
    let scenario = MixScenario::TABLE3[7]; // L8: 23 apps
                                           // Ablation campaigns differ only in their RunConfig, so key each
                                           // journal by the config signature (plus seed) to keep them apart.
    let ckpt = bench_suite::checkpoint_for(&format!(
        "ablation_{seed}_{:016x}",
        colocate::checkpoint::config_signature(config)
    ));
    let stats = evaluate_scenario_multi_checkpointed(
        &[PolicyKind::Moe],
        scenario,
        catalog,
        config,
        3,
        seed,
        ckpt.as_ref(),
    )
    .expect("campaign");
    // OOM kills from one representative mix.
    let mut rng = SimRng::seed_from(seed);
    let mix = scenario.random_mix(catalog, &mut rng);
    let out = run_policy(PolicyKind::Moe, catalog, &mix, config, seed).expect("run");
    (stats.per_policy[0].stp_mean, out.schedule.oom_kills)
}

fn main() {
    let catalog = bench_suite::catalog();

    println!("Ablation 1: KNN vote size (selector accuracy on unseen suites)");
    for k in [1usize, 3, 5, 7] {
        let mut config = TrainingConfig::default();
        config.predictor.selector = SelectorConfig {
            k,
            ..SelectorConfig::default()
        };
        println!(
            "  k = {k}: {:.1} %",
            selector_accuracy(catalog, &config, 100)
        );
    }

    println!("\nAblation 2: principal components kept (selector accuracy)");
    for pcs in [2usize, 3, 5, 10, 22] {
        let mut config = TrainingConfig::default();
        config.predictor.selector = SelectorConfig {
            components: Some(pcs),
            ..SelectorConfig::default()
        };
        println!(
            "  PCs = {pcs:>2}: {:.1} %",
            selector_accuracy(catalog, &config, 101)
        );
    }

    println!("\nAblation 3: calibration fractions (L8 STP, OOM kills)");
    for (f1, f2) in [(0.01, 0.02), (0.028, 0.055), (0.05, 0.10), (0.10, 0.20)] {
        let mut config = RunConfig::default();
        config.scheduler.profiling = ProfilingConfig {
            calib_fraction_1: f1,
            calib_fraction_2: f2,
            ..ProfilingConfig::default()
        };
        let (stp, ooms) = scenario_stp(&config, 102);
        println!("  ({f1:.3}, {f2:.3}): STP {stp:.2}, OOMs {ooms}");
    }

    println!("\nAblation 4: reservation margin (L8 STP, OOM kills)");
    for margin in [1.0, 1.05, 1.2, 1.5] {
        let mut config = RunConfig::default();
        config.scheduler.reserve_margin = margin;
        let (stp, ooms) = scenario_stp(&config, 103);
        println!("  margin {margin:.2}: STP {stp:.2}, OOMs {ooms}");
    }

    println!("\nAblation 5: CPU-contention guard (L8 STP, OOM kills)");
    for cap in [0.8, 1.0, 1.3, 10.0] {
        let mut config = RunConfig::default();
        config.scheduler.cpu_cap = cap;
        let (stp, ooms) = scenario_stp(&config, 104);
        let label = if cap >= 10.0 {
            "off ".to_string()
        } else {
            format!("{cap:.1} ")
        };
        println!("  cap {label}: STP {stp:.2}, OOMs {ooms}");
    }

    println!("\nAblation 6: monitoring window (L8 STP)");
    for window in [30.0, 300.0, 900.0] {
        let mut config = RunConfig::default();
        config.scheduler.monitor = MonitorConfig {
            window_secs: window,
            ..MonitorConfig::default()
        };
        let (stp, _) = scenario_stp(&config, 105);
        println!("  window {window:>4.0} s: STP {stp:.2}");
    }

    println!("\nAblation 7: cluster size (ours vs online search, L6 STP)");
    println!("  §6.5: the search overhead is serialised on the coordinating node,");
    println!("  so its cost grows with the work the cluster could otherwise absorb.");
    for nodes in [10usize, 20, 40, 80] {
        let mut config = RunConfig::default();
        config.scheduler.cluster = sparklite::cluster::ClusterSpec::small(nodes);
        let ckpt = bench_suite::checkpoint_for(&format!("ablation_cluster_{nodes}"));
        let stats = evaluate_scenario_multi_checkpointed(
            &[PolicyKind::OnlineSearch, PolicyKind::Moe],
            MixScenario::TABLE3[5], // L6: 13 apps
            catalog,
            &config,
            3,
            106,
            ckpt.as_ref(),
        )
        .expect("campaign");
        let online = stats.per_policy[0].stp_mean;
        let ours = stats.per_policy[1].stp_mean;
        println!(
            "  {nodes:>3} nodes: online {online:>6.2}, ours {ours:>6.2}  (ours/online {:.2}x)",
            ours / online
        );
    }

    println!("\n(The defaults — k = 1, 95 % variance PCs, 2.8 %/5.5 % calibration, 1.05");
    println!(" margin, 100 % CPU cap, 300 s window — sit at or near each knee.)");
}
