//! Fig. 15: slowdown distribution of the 12 PARSEC benchmarks when a Spark
//! task is co-located on their host under our scheme. The paper measures
//! less than 30 % slowdown, mostly under 20 %.

use colocate::harness::{trained_system_for, RunConfig};
use colocate::interference::parsec_slowdown;
use colocate::metrics::percentiles;
use colocate::scheduler::PolicyKind;
use workloads::parsec::parsec_suite;

fn main() {
    let catalog = bench_suite::catalog();
    let config: RunConfig = bench_suite::paper_run_config();
    let system = trained_system_for(PolicyKind::Moe, catalog, &config, 15)
        .expect("training")
        .expect("moe needs a system");

    println!("Fig. 15: PARSEC slowdown (%) with one co-located Spark task");
    println!(
        "{:<16} {:>8} {:>8} {:>8}",
        "benchmark", "median", "p75", "max"
    );
    bench_suite::rule(44);
    let mut worst: f64 = 0.0;
    for parsec in &parsec_suite() {
        let mut slowdowns = Vec::new();
        for spark in catalog.all() {
            let s = parsec_slowdown(
                catalog,
                parsec,
                spark.index(),
                &system,
                &config.scheduler,
                1500 + spark.index() as u64,
            )
            .expect("parsec pair");
            slowdowns.push(s);
        }
        let max = slowdowns.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        worst = worst.max(max);
        let quartiles = percentiles(&slowdowns, &[50.0, 75.0]);
        println!(
            "{:<16} {:>8.1} {:>8.1} {max:>8.1}",
            parsec.name(),
            quartiles[0],
            quartiles[1]
        );
    }
    bench_suite::rule(44);
    println!("worst PARSEC slowdown {worst:.1} % (paper < 30 %, mostly < 20 %)");
}
