//! Fig. 20 (extension): simulator-core throughput as the cluster grows —
//! the scale sweep behind `results/BENCH_scale.json`.
//!
//! For each node count (40 / 400 / 4 000 / 40 000) the sweep measures the
//! two structures the tick loop lives in, each as a before/after pair
//! inside this one binary:
//!
//! * **event queue** — the hold benchmark at a stationary population of
//!   25 events per node: pop-min / push-replacement transitions (plus
//!   periodic cancel-and-replace), on the binary-heap backend (before)
//!   and the calendar queue (after), reporting wall clock, operations per
//!   second and the peak pending-event depth;
//! * **engine completion loop** — `next_completion` → `advance` →
//!   `complete` → respawn events against a fully loaded engine
//!   (2 executors/node), under the whole-placement rate-cache mode
//!   (before: every event recomputes every node, the pre-sharding cost
//!   model) and the sharded mode (after: dirty shards plus a
//!   tournament-tree path), reporting wall clock and events per second.
//!
//! Both modes and both backends replay identical work — the speedups are
//! pure data-structure effects. Environment knobs for CI smoke runs:
//!
//! * `SPARK_MOE_SCALE_NODES` — largest node count to include (default
//!   40 000);
//! * `SPARK_MOE_SCALE_EVENTS` — cap on completion events and on the queue
//!   population per scale (default: full sweep sizes).

use bench_suite::report::json_num;
use bench_suite::scalekit::{
    build_queue, completion_churn, hold_churn, hold_churn_ops, scale_engine, EXECUTORS_PER_NODE,
};
use simkit::QueueBackend;
use sparklite::engine::RateCacheMode;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

const SCALES: [usize; 4] = [40, 400, 4_000, 40_000];

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Median of a sample vector of wall-clock seconds.
fn median(walls: &mut [f64]) -> f64 {
    walls.sort_by(f64::total_cmp);
    walls[walls.len() / 2]
}

struct QueueSide {
    wall_secs: f64,
    ops_per_sec: f64,
}

struct EngineSide {
    wall_secs: f64,
    events_per_sec: f64,
}

struct ScaleRow {
    nodes: usize,
    queue_depth: usize,
    heap: QueueSide,
    calendar: QueueSide,
    engine_events: usize,
    executors: usize,
    whole: EngineSide,
    sharded: EngineSide,
}

/// Measures heap and calendar hold throughput at `depth` with the two
/// backends' samples interleaved (heap, calendar, heap, calendar, ...) so
/// that host-side noise — frequency scaling, a neighbouring tenant — lands
/// on both backends rather than biasing whichever ran second. Populations
/// are built outside the timed regions: the hold benchmark measures
/// steady-state per-operation cost.
fn measure_queue_pair(depth: usize, steps: usize) -> (QueueSide, QueueSide) {
    const SAMPLES: usize = 5;
    let mut heap_q = build_queue(QueueBackend::Heap, depth);
    let mut cal_q = build_queue(QueueBackend::Calendar, depth);
    let mut k = 0usize;
    // Warm both queues into their steady-state event distribution.
    black_box(hold_churn(&mut heap_q, depth, steps, k));
    black_box(hold_churn(&mut cal_q, depth, steps, k));
    k += steps;
    let mut heap_walls = Vec::with_capacity(SAMPLES);
    let mut cal_walls = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let started = Instant::now();
        black_box(hold_churn(&mut heap_q, depth, steps, k));
        heap_walls.push(started.elapsed().as_secs_f64());
        let started = Instant::now();
        black_box(hold_churn(&mut cal_q, depth, steps, k));
        cal_walls.push(started.elapsed().as_secs_f64());
        k += steps;
    }
    let side = |walls: &mut [f64]| {
        let wall = median(walls);
        QueueSide {
            wall_secs: wall,
            ops_per_sec: hold_churn_ops(steps) as f64 / wall.max(1e-12),
        }
    };
    (side(&mut heap_walls), side(&mut cal_walls))
}

fn measure_engine(nodes: usize, mode: RateCacheMode, events: usize) -> EngineSide {
    let mut eng = scale_engine(nodes, mode);
    let mut k = nodes * EXECUTORS_PER_NODE;
    // Warm up: populate the cache and fault in the executor storage.
    k = completion_churn(&mut eng, (events / 10).clamp(1, 200), k);
    let started = Instant::now();
    completion_churn(&mut eng, events, k);
    let wall = started.elapsed().as_secs_f64();
    EngineSide {
        wall_secs: wall,
        events_per_sec: events as f64 / wall.max(1e-12),
    }
}

fn sweep(max_nodes: usize, event_cap: usize) -> Vec<ScaleRow> {
    let mut rows = Vec::new();
    for &nodes in SCALES.iter().filter(|&&n| n <= max_nodes) {
        let queue_depth = (25 * nodes).min(event_cap);
        let queue_steps = (4 * queue_depth).clamp(10_000, 2_000_000).min(event_cap);
        // Event budgets shrink with scale so the "before" mode's O(N)
        // per-event refresh keeps the sweep under a minute end to end.
        let engine_events = (2_000_000 / nodes).clamp(50, 4_000).min(event_cap);
        eprintln!(
            "fig20: {nodes} nodes — queue depth {queue_depth} ({queue_steps} hold steps), \
             {engine_events} completion events"
        );
        let (heap, calendar) = measure_queue_pair(queue_depth, queue_steps);
        let whole = measure_engine(nodes, RateCacheMode::WholePlacement, engine_events);
        let sharded = measure_engine(nodes, RateCacheMode::Sharded, engine_events);
        rows.push(ScaleRow {
            nodes,
            queue_depth,
            heap,
            calendar,
            engine_events,
            executors: nodes * EXECUTORS_PER_NODE,
            whole,
            sharded,
        });
    }
    rows
}

fn queue_json(side: &QueueSide) -> String {
    format!(
        "{{\"wall_secs\":{},\"ops_per_sec\":{}}}",
        json_num(side.wall_secs),
        json_num(side.ops_per_sec)
    )
}

fn engine_json(side: &EngineSide) -> String {
    format!(
        "{{\"wall_secs\":{},\"events_per_sec\":{}}}",
        json_num(side.wall_secs),
        json_num(side.events_per_sec)
    )
}

fn record_json(rows: &[ScaleRow]) -> String {
    let mut out = String::from("{\"scales\":[\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "{{\"nodes\":{},\
             \"queue\":{{\"peak_depth\":{},\"heap\":{},\"calendar\":{},\"speedup\":{}}},\
             \"engine\":{{\"events\":{},\"executors\":{},\"whole_placement\":{},\"sharded\":{},\"speedup\":{}}}}}",
            r.nodes,
            r.queue_depth,
            queue_json(&r.heap),
            queue_json(&r.calendar),
            json_num(r.heap.wall_secs / r.calendar.wall_secs.max(1e-12)),
            r.engine_events,
            r.executors,
            engine_json(&r.whole),
            engine_json(&r.sharded),
            json_num(r.whole.wall_secs / r.sharded.wall_secs.max(1e-12)),
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("]}\n");
    out
}

fn main() {
    let max_nodes = env_usize("SPARK_MOE_SCALE_NODES", *SCALES.last().unwrap());
    let event_cap = env_usize("SPARK_MOE_SCALE_EVENTS", usize::MAX);
    let rows = sweep(max_nodes, event_cap);

    println!("Fig. 20: simulator-core throughput vs cluster size");
    println!(
        "{:>7} {:>10} {:>12} {:>12} {:>7} {:>12} {:>12} {:>7}",
        "nodes", "depth", "heap op/s", "cal op/s", "q spd", "whole ev/s", "shard ev/s", "e spd"
    );
    for r in &rows {
        println!(
            "{:>7} {:>10} {:>12.0} {:>12.0} {:>6.2}x {:>12.1} {:>12.1} {:>6.2}x",
            r.nodes,
            r.queue_depth,
            r.heap.ops_per_sec,
            r.calendar.ops_per_sec,
            r.heap.wall_secs / r.calendar.wall_secs.max(1e-12),
            r.whole.events_per_sec,
            r.sharded.events_per_sec,
            r.whole.wall_secs / r.sharded.wall_secs.max(1e-12),
        );
    }

    let results = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    match bench_suite::fsutil::atomic_write_in(&results, "BENCH_scale.json", &record_json(&rows)) {
        Ok(path) => println!("scale record written to {}", path.display()),
        Err(e) => eprintln!("fig20_scale: cannot write results/BENCH_scale.json: {e}"),
    }
}
