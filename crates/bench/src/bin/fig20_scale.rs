//! Fig. 20 (extension): simulator-core throughput as the cluster grows —
//! the scale sweep behind `results/BENCH_scale.json`.
//!
//! For each node count (40 / 400 / 4 000 / 40 000) the sweep measures the
//! two structures the tick loop lives in, each as a before/after pair
//! inside this one binary:
//!
//! * **event queue** — the hold benchmark at a stationary population of
//!   25 events per node: pop-min / push-replacement transitions (plus
//!   periodic cancel-and-replace), on the binary-heap backend (before)
//!   and the calendar queue (after), reporting wall clock, operations per
//!   second and the peak pending-event depth;
//! * **engine completion loop** — `next_completion` → `advance` →
//!   `complete` → respawn events against a fully loaded engine
//!   (2 executors/node), under the whole-placement rate-cache mode
//!   (before: every event recomputes every node, the pre-sharding cost
//!   model) and the sharded mode (after: dirty shards plus a
//!   tournament-tree path), reporting wall clock and events per second.
//!
//! Both modes and both backends replay identical work — the speedups are
//! pure data-structure effects. A third axis (from the intra-simulation
//! parallelism work, DESIGN.md §17) measures the sharded cache's batched
//! rate refresh under placement storms at 1/2/4/8 refresh workers: each
//! round kills and respawns one executor on every node (dirtying every
//! shard) and times the single `next_completion` that repays the whole
//! dirty set. Recorded speedups are real wall clock — on a single-core
//! host they hover near 1×; the parallel fraction only cashes out on
//! multi-core hardware. Environment knobs for CI smoke runs:
//!
//! * `SPARK_MOE_SCALE_NODES` — largest node count to include (default
//!   40 000);
//! * `SPARK_MOE_SCALE_EVENTS` — cap on completion events and on the queue
//!   population per scale (default: full sweep sizes);
//! * `SPARK_MOE_SCALE_CHECK=1` — replace every timing with deterministic
//!   engine-state digests: stdout and `BENCH_scale.json` become a pure
//!   function of the sweep configuration, byte-identical at any
//!   `SPARK_MOE_THREADS` (the CI bit-identity loop compares 1 vs 4);
//! * `SPARK_MOE_CSV_DIR` — write `BENCH_scale.json` here instead of
//!   `results/`.

use bench_suite::report::json_num;
use bench_suite::scalekit::{
    build_queue, completion_churn, engine_digest, hold_churn, hold_churn_ops, scale_engine,
    scale_engine_tracked, storm_mutate, EXECUTORS_PER_NODE,
};
use simkit::QueueBackend;
use sparklite::engine::RateCacheMode;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

const SCALES: [usize; 4] = [40, 400, 4_000, 40_000];
/// Refresh-worker counts for the storm-refresh axis.
const THREADS: [usize; 4] = [1, 2, 4, 8];
/// Smallest scale worth a threads axis: below the engine's parallel-path
/// gate (64 dirty shards) every worker count takes the serial path.
const THREADS_MIN_NODES: usize = 400;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Median of a sample vector of wall-clock seconds.
fn median(walls: &mut [f64]) -> f64 {
    walls.sort_by(f64::total_cmp);
    walls[walls.len() / 2]
}

struct QueueSide {
    wall_secs: f64,
    ops_per_sec: f64,
}

struct EngineSide {
    wall_secs: f64,
    events_per_sec: f64,
}

struct ThreadSide {
    workers: usize,
    wall_secs: f64,
    refreshes_per_sec: f64,
}

struct ScaleRow {
    nodes: usize,
    queue_depth: usize,
    heap: QueueSide,
    calendar: QueueSide,
    engine_events: usize,
    executors: usize,
    whole: EngineSide,
    sharded: EngineSide,
    storm_rounds: usize,
    /// One entry per [`THREADS`] worker count; empty below
    /// [`THREADS_MIN_NODES`].
    threads: Vec<ThreadSide>,
}

/// Measures heap and calendar hold throughput at `depth` with the two
/// backends' samples interleaved (heap, calendar, heap, calendar, ...) so
/// that host-side noise — frequency scaling, a neighbouring tenant — lands
/// on both backends rather than biasing whichever ran second. Populations
/// are built outside the timed regions: the hold benchmark measures
/// steady-state per-operation cost.
fn measure_queue_pair(depth: usize, steps: usize) -> (QueueSide, QueueSide) {
    const SAMPLES: usize = 5;
    let mut heap_q = build_queue(QueueBackend::Heap, depth);
    let mut cal_q = build_queue(QueueBackend::Calendar, depth);
    let mut k = 0usize;
    // Warm both queues into their steady-state event distribution.
    black_box(hold_churn(&mut heap_q, depth, steps, k));
    black_box(hold_churn(&mut cal_q, depth, steps, k));
    k += steps;
    let mut heap_walls = Vec::with_capacity(SAMPLES);
    let mut cal_walls = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let started = Instant::now();
        black_box(hold_churn(&mut heap_q, depth, steps, k));
        heap_walls.push(started.elapsed().as_secs_f64());
        let started = Instant::now();
        black_box(hold_churn(&mut cal_q, depth, steps, k));
        cal_walls.push(started.elapsed().as_secs_f64());
        k += steps;
    }
    let side = |walls: &mut [f64]| {
        let wall = median(walls);
        QueueSide {
            wall_secs: wall,
            ops_per_sec: hold_churn_ops(steps) as f64 / wall.max(1e-12),
        }
    };
    (side(&mut heap_walls), side(&mut cal_walls))
}

fn measure_engine(nodes: usize, mode: RateCacheMode, events: usize) -> EngineSide {
    let mut eng = scale_engine(nodes, mode);
    let mut k = nodes * EXECUTORS_PER_NODE;
    // Warm up: populate the cache and fault in the executor storage.
    k = completion_churn(&mut eng, (events / 10).clamp(1, 200), k);
    let started = Instant::now();
    completion_churn(&mut eng, events, k);
    let wall = started.elapsed().as_secs_f64();
    EngineSide {
        wall_secs: wall,
        events_per_sec: events as f64 / wall.max(1e-12),
    }
}

/// Storm rounds at `nodes`: enough refreshed shards to time, bounded so
/// the whole axis (four worker counts) stays inside the sweep budget.
fn storm_rounds(nodes: usize, event_cap: usize) -> usize {
    (400_000 / nodes)
        .clamp(4, 100)
        .min((event_cap / nodes).max(1))
}

/// Measures the storm-refresh axis: per round, an untimed placement storm
/// dirties every shard, then the single `next_completion` that repays the
/// whole dirty set is timed. Worker counts share the round budget, each
/// against a fresh engine pinned to that count.
fn measure_threads(nodes: usize, rounds: usize) -> Vec<ThreadSide> {
    THREADS
        .iter()
        .map(|&workers| {
            let (mut eng, mut slots) = scale_engine_tracked(nodes, RateCacheMode::Sharded);
            eng.set_refresh_workers(workers);
            let mut k = nodes * EXECUTORS_PER_NODE;
            // Warm up: one untimed storm faults in caches and arenas.
            storm_mutate(&mut eng, &mut slots, k);
            black_box(eng.next_completion());
            k += nodes;
            let mut wall = 0.0;
            for _ in 0..rounds {
                storm_mutate(&mut eng, &mut slots, k);
                k += nodes;
                let started = Instant::now();
                black_box(eng.next_completion());
                wall += started.elapsed().as_secs_f64();
            }
            ThreadSide {
                workers,
                wall_secs: wall,
                refreshes_per_sec: (rounds * nodes) as f64 / wall.max(1e-12),
            }
        })
        .collect()
}

fn sweep(max_nodes: usize, event_cap: usize) -> Vec<ScaleRow> {
    let mut rows = Vec::new();
    for &nodes in SCALES.iter().filter(|&&n| n <= max_nodes) {
        let queue_depth = (25 * nodes).min(event_cap);
        let queue_steps = (4 * queue_depth).clamp(10_000, 2_000_000).min(event_cap);
        // Event budgets shrink with scale so the "before" mode's O(N)
        // per-event refresh keeps the sweep under a minute end to end.
        let engine_events = (2_000_000 / nodes).clamp(50, 4_000).min(event_cap);
        let rounds = storm_rounds(nodes, event_cap);
        eprintln!(
            "fig20: {nodes} nodes — queue depth {queue_depth} ({queue_steps} hold steps), \
             {engine_events} completion events, {rounds} storm rounds"
        );
        let (heap, calendar) = measure_queue_pair(queue_depth, queue_steps);
        let whole = measure_engine(nodes, RateCacheMode::WholePlacement, engine_events);
        let sharded = measure_engine(nodes, RateCacheMode::Sharded, engine_events);
        let threads = if nodes >= THREADS_MIN_NODES {
            measure_threads(nodes, rounds)
        } else {
            Vec::new()
        };
        rows.push(ScaleRow {
            nodes,
            queue_depth,
            heap,
            calendar,
            engine_events,
            executors: nodes * EXECUTORS_PER_NODE,
            whole,
            sharded,
            storm_rounds: rounds,
            threads,
        });
    }
    rows
}

fn queue_json(side: &QueueSide) -> String {
    format!(
        "{{\"wall_secs\":{},\"ops_per_sec\":{}}}",
        json_num(side.wall_secs),
        json_num(side.ops_per_sec)
    )
}

fn engine_json(side: &EngineSide) -> String {
    format!(
        "{{\"wall_secs\":{},\"events_per_sec\":{}}}",
        json_num(side.wall_secs),
        json_num(side.events_per_sec)
    )
}

fn threads_json(rounds: usize, threads: &[ThreadSide]) -> String {
    let mut out = format!(",\"storm_rounds\":{rounds},\"threads\":[");
    for (i, t) in threads.iter().enumerate() {
        let _ = write!(
            out,
            "{}{{\"workers\":{},\"wall_secs\":{},\"refreshes_per_sec\":{}}}",
            if i > 0 { "," } else { "" },
            t.workers,
            json_num(t.wall_secs),
            json_num(t.refreshes_per_sec)
        );
    }
    out.push(']');
    let wall_at = |w: usize| threads.iter().find(|t| t.workers == w).map(|t| t.wall_secs);
    if let (Some(w1), Some(w4)) = (wall_at(1), wall_at(4)) {
        let _ = write!(
            out,
            ",\"speedup_4x_vs_1x\":{}",
            json_num(w1 / w4.max(1e-12))
        );
    }
    out
}

fn record_json(rows: &[ScaleRow]) -> String {
    let mut out = String::from("{\"scales\":[\n");
    for (i, r) in rows.iter().enumerate() {
        let threads = if r.threads.is_empty() {
            String::new()
        } else {
            threads_json(r.storm_rounds, &r.threads)
        };
        let _ = write!(
            out,
            "{{\"nodes\":{},\
             \"queue\":{{\"peak_depth\":{},\"heap\":{},\"calendar\":{},\"speedup\":{}}},\
             \"engine\":{{\"events\":{},\"executors\":{},\"whole_placement\":{},\"sharded\":{},\"speedup\":{}{}}}}}",
            r.nodes,
            r.queue_depth,
            queue_json(&r.heap),
            queue_json(&r.calendar),
            json_num(r.heap.wall_secs / r.calendar.wall_secs.max(1e-12)),
            r.engine_events,
            r.executors,
            engine_json(&r.whole),
            engine_json(&r.sharded),
            json_num(r.whole.wall_secs / r.sharded.wall_secs.max(1e-12)),
            threads,
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("]}\n");
    out
}

/// The output directory: `SPARK_MOE_CSV_DIR` when set, else `results/`.
fn out_dir() -> std::path::PathBuf {
    bench_suite::csv::csv_dir()
        .unwrap_or_else(|| std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results"))
}

/// Writes `BENCH_scale.json`. In check mode the destination notice goes
/// to stderr: stdout must stay a pure function of the sweep
/// configuration, and the output directory is not part of it.
fn write_record(record: &str, check: bool) {
    match bench_suite::fsutil::atomic_write_in(&out_dir(), "BENCH_scale.json", record) {
        Ok(path) if check => eprintln!("scale record written to {}", path.display()),
        Ok(path) => println!("scale record written to {}", path.display()),
        Err(e) => eprintln!("fig20_scale: cannot write BENCH_scale.json: {e}"),
    }
}

/// `SPARK_MOE_SCALE_CHECK=1`: replace every timing with deterministic
/// engine-state digests. The same churn and storm workloads run, but the
/// output is a pure function of the sweep configuration — the CI
/// bit-identity loop compares this mode's stdout and JSON at
/// `SPARK_MOE_THREADS=1` vs `4`, pinning the parallel refresh path's
/// bit-exactness end to end (the engines here take their worker count
/// from the environment, exactly as production engines do).
fn check_sweep(max_nodes: usize, event_cap: usize) {
    println!("Fig. 20 scale check: deterministic engine digests (no timings)");
    let mut json = String::from("{\"check\":true,\"scales\":[\n");
    let scales: Vec<usize> = SCALES.iter().copied().filter(|&n| n <= max_nodes).collect();
    for (i, &nodes) in scales.iter().enumerate() {
        let events = (2_000_000 / nodes).clamp(50, 4_000).min(event_cap);
        let mut churn = Vec::new();
        for mode in [RateCacheMode::WholePlacement, RateCacheMode::Sharded] {
            let mut eng = scale_engine(nodes, mode);
            completion_churn(&mut eng, events, nodes * EXECUTORS_PER_NODE);
            churn.push(engine_digest(&mut eng));
        }
        let (mut eng, mut slots) = scale_engine_tracked(nodes, RateCacheMode::Sharded);
        let mut k = nodes * EXECUTORS_PER_NODE;
        let mut storm = 0xcbf2_9ce4_8422_2325u64;
        for _ in 0..3 {
            storm_mutate(&mut eng, &mut slots, k);
            k += nodes;
            storm = storm.rotate_left(7) ^ engine_digest(&mut eng);
        }
        println!(
            "nodes {nodes}: events {events} churn[whole {:016x} sharded {:016x}] storm {storm:016x}",
            churn[0], churn[1]
        );
        let _ = write!(
            json,
            "{{\"nodes\":{nodes},\"events\":{events},\"churn_whole\":\"{:016x}\",\
             \"churn_sharded\":\"{:016x}\",\"storm\":\"{storm:016x}\"}}",
            churn[0], churn[1]
        );
        json.push_str(if i + 1 < scales.len() { ",\n" } else { "\n" });
    }
    json.push_str("]}\n");
    write_record(&json, true);
}

fn main() {
    let max_nodes = env_usize("SPARK_MOE_SCALE_NODES", SCALES[SCALES.len() - 1]);
    let event_cap = env_usize("SPARK_MOE_SCALE_EVENTS", usize::MAX);
    if env_usize("SPARK_MOE_SCALE_CHECK", 0) == 1 {
        check_sweep(max_nodes, event_cap);
        return;
    }
    let rows = sweep(max_nodes, event_cap);

    println!("Fig. 20: simulator-core throughput vs cluster size");
    println!(
        "{:>7} {:>10} {:>12} {:>12} {:>7} {:>12} {:>12} {:>7}",
        "nodes", "depth", "heap op/s", "cal op/s", "q spd", "whole ev/s", "shard ev/s", "e spd"
    );
    for r in &rows {
        println!(
            "{:>7} {:>10} {:>12.0} {:>12.0} {:>6.2}x {:>12.1} {:>12.1} {:>6.2}x",
            r.nodes,
            r.queue_depth,
            r.heap.ops_per_sec,
            r.calendar.ops_per_sec,
            r.heap.wall_secs / r.calendar.wall_secs.max(1e-12),
            r.whole.events_per_sec,
            r.sharded.events_per_sec,
            r.whole.wall_secs / r.sharded.wall_secs.max(1e-12),
        );
    }
    if rows.iter().any(|r| !r.threads.is_empty()) {
        println!("Fig. 20 (threads): storm-refresh throughput vs refresh workers (sharded)");
        println!(
            "{:>7} {:>7} {:>12} {:>12} {:>12} {:>12} {:>7}",
            "nodes", "rounds", "w=1 rfr/s", "w=2 rfr/s", "w=4 rfr/s", "w=8 rfr/s", "4x spd"
        );
        for r in rows.iter().filter(|r| !r.threads.is_empty()) {
            let rate = |w: usize| {
                r.threads
                    .iter()
                    .find(|t| t.workers == w)
                    .map_or(0.0, |t| t.refreshes_per_sec)
            };
            let wall = |w: usize| {
                r.threads
                    .iter()
                    .find(|t| t.workers == w)
                    .map_or(0.0, |t| t.wall_secs)
            };
            println!(
                "{:>7} {:>7} {:>12.0} {:>12.0} {:>12.0} {:>12.0} {:>6.2}x",
                r.nodes,
                r.storm_rounds,
                rate(1),
                rate(2),
                rate(4),
                rate(8),
                wall(1) / wall(4).max(1e-12),
            );
        }
    }

    write_record(&record_json(&rows), false);
}
