//! Fig. 19 (extension): throughput under injected faults — STP and ANTT
//! for the self-healing MoE scheduler vs plain MoE, Pairwise and Oracle
//! as the fault intensity rises.
//!
//! Every entry replays the *same* mixes against the *same* seeded
//! [`FaultPlan`](simkit::faults::FaultPlan) per mix (node crashes,
//! executor crash-restarts, monitor dropouts, prediction noise), so the
//! curves differ only in scheduling policy and recovery behaviour.
//! Intensity 0 injects nothing and reproduces the fault-free campaign bit
//! for bit. Set `SPARK_MOE_MIXES` to raise the per-intensity mix count.

use bench_suite::csv::{csv_dir, num, CsvTable};
use colocate::harness::{evaluate_chaos_checkpointed, ChaosEntry, ChaosSpec, ChaosStats};
use colocate::scheduler::{PolicyKind, ResilienceConfig};
use workloads::MixScenario;

const INTENSITIES: [f64; 4] = [0.0, 0.1, 0.3, 0.5];

fn entries() -> Vec<ChaosEntry> {
    vec![
        ChaosEntry {
            label: "Ours (self-healing)",
            policy: PolicyKind::Moe,
            resilience: ResilienceConfig::self_healing(),
        },
        ChaosEntry {
            label: "Ours (plain)",
            policy: PolicyKind::Moe,
            resilience: ResilienceConfig::default(),
        },
        ChaosEntry {
            label: "Pairwise",
            policy: PolicyKind::Pairwise,
            resilience: ResilienceConfig::default(),
        },
        ChaosEntry {
            label: "Oracle",
            policy: PolicyKind::Oracle,
            resilience: ResilienceConfig::default(),
        },
    ]
}

fn main() {
    let catalog = bench_suite::catalog();
    let config = bench_suite::paper_run_config();
    let mixes = bench_suite::mixes_per_scenario();
    let scenario = MixScenario::TABLE3[3]; // L4: 9 applications
    let entries = entries();

    println!(
        "Fig. 19: fault tolerance on {} ({} apps), {mixes} shared mixes per intensity",
        scenario.name(),
        scenario.apps
    );

    let mut all_stats: Vec<ChaosStats> = Vec::new();
    for intensity in INTENSITIES {
        let chaos = ChaosSpec::at_intensity(intensity);
        // One journal per intensity: an interrupted sweep resumes
        // mid-campaign when SPARK_MOE_CHECKPOINT_DIR is set.
        let ckpt = bench_suite::checkpoint_for(&format!("fig19_i{:02}", (intensity * 10.0) as u32));
        let stats = evaluate_chaos_checkpointed(
            &entries,
            scenario,
            catalog,
            &config,
            mixes,
            42,
            &chaos,
            ckpt.as_ref(),
        )
        .expect("chaos campaign");
        all_stats.push(stats);
    }

    println!("\n(a) normalized STP  —  mean [min, max]");
    print!("{:<10}", "intensity");
    for e in &entries {
        print!(" {:>20}", e.label);
    }
    println!();
    for stats in &all_stats {
        print!("{:<10.1}", stats.intensity);
        for s in &stats.per_entry {
            print!(
                " {:>6.2} {:>13}",
                s.stp_mean,
                bench_suite::whisker(s.stp_min_max)
            );
        }
        println!();
    }

    println!("\n(b) ANTT reduction (%)  —  higher is better");
    print!("{:<10}", "intensity");
    for e in &entries {
        print!(" {:>20}", e.label);
    }
    println!();
    for stats in &all_stats {
        print!("{:<10.1}", stats.intensity);
        for s in &stats.per_entry {
            print!(" {:>20.1}", s.antt_mean);
        }
        println!();
    }

    println!("\n(c) delivered faults and recovery actions (summed over mixes)");
    println!(
        "{:<10} {:<22} {:>6} {:>6} {:>6} {:>6} {:>8} {:>8} {:>6} {:>6}",
        "intensity",
        "entry",
        "nodeX",
        "execX",
        "dropM",
        "noise",
        "requeGB",
        "retries",
        "quar",
        "fallbk"
    );
    for stats in &all_stats {
        for s in &stats.per_entry {
            let f = &s.faults;
            println!(
                "{:<10.1} {:<22} {:>6} {:>6} {:>6} {:>6} {:>8.1} {:>8} {:>6} {:>6}",
                stats.intensity,
                s.label,
                f.node_crashes,
                f.executor_crashes,
                f.monitor_dropouts,
                f.prediction_noise,
                f.slices_requeued_gb,
                f.retries,
                f.quarantines,
                f.isolated_fallbacks
            );
        }
    }

    if let Some(dir) = csv_dir() {
        let mut table = CsvTable::new([
            "intensity",
            "entry",
            "stp_mean",
            "stp_min",
            "stp_max",
            "antt_reduction_pct",
            "oom_kills_mean",
            "retries",
            "quarantines",
            "isolated_fallbacks",
        ]);
        for stats in &all_stats {
            for s in &stats.per_entry {
                table.push([
                    num(stats.intensity),
                    s.label.to_string(),
                    num(s.stp_mean),
                    num(s.stp_min_max.0),
                    num(s.stp_min_max.1),
                    num(s.antt_mean),
                    num(s.oom_kills_mean),
                    s.faults.retries.to_string(),
                    s.faults.quarantines.to_string(),
                    s.faults.isolated_fallbacks.to_string(),
                ]);
            }
        }
        if let Ok(path) = table.write_to(&dir, "fig19_chaos") {
            println!("\nCSV series written to {}", path.display());
        }
        // Machine-readable record, written atomically (old file intact if
        // the process dies mid-emission). Deterministic byte-for-byte:
        // the kill-resume acceptance test diffs this artifact.
        let json = bench_suite::report::chaos_stats_json(&all_stats);
        if let Ok(path) =
            bench_suite::fsutil::atomic_write_in(&dir, "BENCH_fig19_chaos.json", &json)
        {
            println!("JSON record written to {}", path.display());
        }
    }

    // Headline: what self-healing buys at the highest stress level.
    let last = all_stats.last().expect("at least one intensity");
    let healed = &last.per_entry[0];
    let plain = &last.per_entry[1];
    println!("\nHeadline at intensity {:.1}:", last.intensity);
    println!(
        "  self-healing vs plain MoE:  STP {:.2}x vs {:.2}x, ANTT reduction {:.1}% vs {:.1}%",
        healed.stp_mean, plain.stp_mean, healed.antt_mean, plain.antt_mean
    );
}
