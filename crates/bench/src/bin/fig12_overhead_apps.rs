//! Fig. 12: per-benchmark profiling overhead for the 16 HiBench and
//! BigDataBench programs at ~280 GB input: feature-extraction time,
//! calibration time and total execution time.

use colocate::harness::{trained_system_for, RunConfig};
use colocate::scheduler::{run_schedule_custom, PolicyKind};

const INPUT_GB: f64 = 280.0;

fn main() {
    let catalog = bench_suite::catalog();
    let config: RunConfig = bench_suite::paper_run_config();
    let system = trained_system_for(PolicyKind::Moe, catalog, &config, 12)
        .expect("training")
        .expect("moe needs a system");

    println!("Fig. 12: profiling vs total runtime per benchmark (~280 GB input)");
    println!(
        "{:<20} {:>12} {:>12} {:>12} {:>10}",
        "benchmark", "feature (m)", "calib (m)", "total (m)", "overhead %"
    );
    bench_suite::rule(72);
    for bench in catalog.training_set() {
        let outcome = run_schedule_custom(
            PolicyKind::Moe,
            catalog,
            &[(bench.index(), INPUT_GB)],
            Some(&system),
            &config.scheduler,
            1200 + bench.index() as u64,
        )
        .expect("solo schedule");
        let app = &outcome.per_app[0];
        let total_min = app.finished_at / 60.0;
        let feat_min = app.profiling.feature_secs / 60.0;
        let calib_min = app.profiling.calibration_secs / 60.0;
        println!(
            "{:<20} {feat_min:>12.1} {calib_min:>12.1} {total_min:>12.1} {:>10.1}",
            bench.name(),
            (feat_min + calib_min) / total_min * 100.0
        );
    }
    bench_suite::rule(72);
    println!("(paper: total runtimes 10-45 min; profiling a small stacked sliver)");
}
