//! Fig. 18: predicted vs measured footprint curves for the 16 training
//! benchmarks over a sweep of input sizes (the paper sweeps 3×10⁻⁵ GB to
//! 280 GB). Predictions come from the leave-one-out-trained system with
//! two-point calibration, exactly as at runtime.

use colocate::predictors::{MemoryPredictor, MoePolicy};
use colocate::profiling::{profile_app, ProfilingConfig};
use colocate::training::{train_loocv, TrainingConfig};
use simkit::SimRng;

fn main() {
    let catalog = bench_suite::catalog();
    let config = TrainingConfig::default();
    let profiling = ProfilingConfig::default();
    let mut rng = SimRng::seed_from(0xF1618);
    let sweep = [0.003, 0.03, 0.3, 3.0, 10.0, 30.0, 64.0];

    println!("Fig. 18: predicted vs measured footprints (GB) over executor slice sizes");
    for bench in catalog.training_set() {
        let system = train_loocv(catalog, bench, &config, &mut rng).expect("training");
        let moe = MoePolicy::new(system);
        let (profile, _) = profile_app(bench, 280.0, 40, 64.0, &profiling, &mut rng);
        let prediction = moe.predict(&profile).expect("prediction");

        println!("\n{} — {}", bench.name(), bench.family().name());
        println!(
            "{:>10} {:>10} {:>10} {:>8}",
            "slice GB", "measured", "predicted", "err %"
        );
        for &x in &sweep {
            let measured = bench.true_footprint_gb(x);
            let predicted = prediction.model.footprint_gb(x);
            let err = if measured > 1e-9 {
                (predicted - measured) / measured * 100.0
            } else {
                0.0
            };
            println!("{x:>10.3} {measured:>10.2} {predicted:>10.2} {err:>+8.1}");
        }
    }
    println!("\n(The paper plots these per-benchmark curves in eight panels.)");
}
