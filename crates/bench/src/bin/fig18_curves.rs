//! Fig. 18: predicted vs measured footprint curves for the 16 training
//! benchmarks over a sweep of input sizes (the paper sweeps 3×10⁻⁵ GB to
//! 280 GB). Predictions come from the leave-one-out-trained system with
//! two-point calibration, exactly as at runtime.

use bench_suite::mlcamp;

fn main() -> Result<(), mlcamp::CampaignError> {
    let report = mlcamp::fig18_report(bench_suite::catalog(), simkit::par::available_workers())?;
    print!("{report}");
    Ok(())
}
