//! Fig. 14: slowdown distribution of each HiBench/BigDataBench benchmark
//! when co-located with every other benchmark on a single host under our
//! scheme (~280 GB target input). The paper's violins stay below 25 %
//! slowdown with medians under 10 %.

use colocate::harness::{trained_system_for, RunConfig};
use colocate::interference::spark_pair_slowdown;
use colocate::metrics::{percentile, percentiles};
use colocate::scheduler::PolicyKind;

fn main() {
    let catalog = bench_suite::catalog();
    let config: RunConfig = bench_suite::paper_run_config();
    let system = trained_system_for(PolicyKind::Moe, catalog, &config, 14)
        .expect("training")
        .expect("moe needs a system");

    println!("Fig. 14: target slowdown (%) under co-location, one competitor at a time");
    println!(
        "{:<20} {:>8} {:>8} {:>8} {:>8}",
        "target", "median", "p75", "max", "min"
    );
    bench_suite::rule(56);
    let mut worst: f64 = 0.0;
    let mut medians = Vec::new();
    for target in catalog.training_set() {
        let mut slowdowns = Vec::new();
        for other in catalog.all() {
            if other.index() == target.index() {
                continue;
            }
            let s = spark_pair_slowdown(
                catalog,
                target.index(),
                other.index(),
                &system,
                &config.scheduler,
                1400 + other.index() as u64,
            )
            .expect("pair run");
            slowdowns.push(s);
        }
        // One sort serves both quantiles (total_cmp: NaN-safe by
        // construction, though pair slowdowns are always finite).
        let quartiles = percentiles(&slowdowns, &[50.0, 75.0]);
        let med = quartiles[0];
        medians.push(med);
        let max = slowdowns.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = slowdowns.iter().cloned().fold(f64::INFINITY, f64::min);
        worst = worst.max(max);
        println!(
            "{:<20} {med:>8.1} {:>8.1} {max:>8.1} {min:>8.1}",
            target.name(),
            quartiles[1]
        );
    }
    bench_suite::rule(56);
    let overall_median = percentile(&medians, 50.0);
    println!(
        "max slowdown {worst:.1} % (paper < 25 %), median of medians {overall_median:.1} % (paper < 10 %)"
    );
}
