//! Validates the §5.2 replay protocol: the paper replays each scenario
//! until the 95 % confidence half-width falls below 5 % of the mean. This
//! binary shows how the normalized-STP confidence interval tightens with
//! the number of random mixes, and where the stopping rule triggers.

use colocate::harness::{run_policy, RunConfig};
use colocate::scheduler::PolicyKind;
use simkit::stats::Welford;
use simkit::SimRng;
use workloads::MixScenario;

fn main() {
    let catalog = bench_suite::catalog();
    let config = RunConfig::default();
    let scenario = MixScenario::TABLE3[4]; // L5: 11 applications
    let max_mixes = bench_suite::mixes_per_scenario().max(12);

    println!(
        "Convergence of normalized STP (ours, scenario {}) over random mixes",
        scenario.name()
    );
    println!(
        "{:>6} {:>10} {:>14} {:>12}",
        "mixes", "mean", "95% half-width", "rel. width"
    );
    bench_suite::rule(46);

    let mut stats = Welford::new();
    let mut mix_rng = SimRng::seed_from(52);
    let mut stopped_at = None;
    for m in 0..max_mixes {
        let mix = scenario.random_mix(catalog, &mut mix_rng);
        let outcome =
            run_policy(PolicyKind::Moe, catalog, &mix, &config, 52 + m as u64).expect("run");
        stats.push(outcome.normalized.normalized_stp);
        let hw = stats.ci95_half_width();
        let rel = if stats.mean() > 0.0 {
            hw / stats.mean()
        } else {
            f64::INFINITY
        };
        println!(
            "{:>6} {:>10.3} {:>14.3} {:>11.1}%",
            m + 1,
            stats.mean(),
            if hw.is_finite() { hw } else { f64::NAN },
            rel * 100.0
        );
        if stopped_at.is_none() && stats.ci_converged(0.05) {
            stopped_at = Some(m + 1);
        }
    }
    bench_suite::rule(46);
    match stopped_at {
        Some(n) => {
            println!("§5.2 stopping rule (half-width < 5 % of mean) triggers after {n} mixes")
        }
        None => {
            println!("stopping rule not reached within {max_mixes} mixes — raise SPARK_MOE_MIXES")
        }
    }
}
