//! Table 2 / Fig. 4b: the 22 raw features ranked by importance.
//!
//! Reproduces the paper's feature analysis: observe the 16 training
//! benchmarks' features, min-max scale, PCA to 95 % variance, Varimax-rotate
//! the loadings and rank raw features by their contribution to the rotated
//! components. The paper's top five are `L1_TCM, L1_DCM, vcache, L1_STM, bo`.

use mlkit::pca::Pca;
use mlkit::scaling::MinMaxScaler;
use mlkit::varimax::{feature_contributions, rank_features, varimax};
use moe_core::features::RawFeature;
use simkit::SimRng;
use workloads::signatures;

fn main() {
    let catalog = bench_suite::catalog();
    let mut rng = SimRng::seed_from(0x7AB2);

    // Several profiling observations per training benchmark.
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for bench in catalog.training_set() {
        for _ in 0..4 {
            rows.push(signatures::observe_default(bench, &mut rng).into_vec());
        }
    }

    let scaler = MinMaxScaler::fit(&rows).expect("non-empty training rows");
    let scaled = scaler.transform_batch(&rows).expect("fixed arity");
    let pca = Pca::fit_for_variance(&scaled, 0.95).expect("PCA fit");

    // Factor loadings: eigenvector entries scaled by each component's
    // standard deviation (√λ), features × components. Varimax rotation
    // redistributes the loadings across components for interpretability;
    // a feature's total contribution (its row sum of squares — the
    // communality) is rotation-invariant.
    let axes = pca.loadings(); // components × features, unit rows
    let eigenvalues = pca.eigenvalues();
    let mut loadings = mlkit::linalg::Matrix::zeros(axes.cols(), axes.rows());
    for (c, &eigenvalue) in eigenvalues.iter().enumerate().take(axes.rows()) {
        let sd = eigenvalue.max(0.0).sqrt();
        for d in 0..axes.cols() {
            loadings.set(d, c, axes.get(c, d) * sd);
        }
    }
    let rotated = varimax(&loadings, 200, 1e-10).expect("varimax");
    let uniform = vec![1.0; rotated.rotated.cols()];
    let contrib = feature_contributions(&rotated.rotated, &uniform).expect("uniform weights");
    let ranking = rank_features(&contrib);

    println!("Table 2: raw features sorted by importance (measured)");
    println!(
        "{:<4} {:<8} {:>12}  description",
        "rank", "abbr", "contrib (%)"
    );
    bench_suite::rule(64);
    for (rank, &f) in ranking.iter().enumerate() {
        let feature = RawFeature::ALL[f];
        println!(
            "{:<4} {:<8} {:>12.2}  {}",
            rank + 1,
            feature.abbr(),
            contrib[f],
            feature.description()
        );
    }
    bench_suite::rule(64);
    let top5: Vec<&str> = ranking
        .iter()
        .take(5)
        .map(|&f| RawFeature::ALL[f].abbr())
        .collect();
    println!("top-5 measured: {top5:?}");
    println!("top-5 in paper: [\"L1_TCM\", \"L1_DCM\", \"vcache\", \"L1_STM\", \"bo\"]");
    println!("(Fig. 4b plots the same top-5 contributions as a bar chart.)");
}
