//! Fig. 13: distribution of CPU load across the 44 benchmarks when running
//! in isolation. The paper's histogram peaks in the 20–40 % bins, with the
//! CPU under 40 % for most benchmarks — the headroom co-location exploits.

use simkit::stats::Histogram;

fn main() {
    let catalog = bench_suite::catalog();
    let mut histogram = Histogram::new(0.0, 60.0, 6);
    for bench in catalog.all() {
        histogram.record(bench.cpu_util() * 100.0);
    }

    println!("Fig. 13: CPU load distribution in isolation mode");
    println!("{:>10} {:>14}", "load (%)", "# benchmarks");
    bench_suite::rule(26);
    for (i, count) in histogram.bin_counts().iter().enumerate() {
        let (lo, hi) = histogram.bin_edges(i);
        println!(
            "{:>4.0}-{:<5.0} {:>12}  {}",
            lo,
            hi,
            count,
            "#".repeat(*count as usize)
        );
    }
    bench_suite::rule(26);
    let under_40 = histogram.bin_counts()[..4].iter().sum::<u64>();
    println!("benchmarks under 40 % CPU: {under_40}/44 (paper: \"most of the 44 benchmarks\")");
}
