//! Fig. 8: STP (a) and wall-clock turnaround time (b) for the Table 4
//! 30-application mix under Pairwise, Quasar and our approach. The paper
//! measures 1.81×/1.39× higher STP and 1.46×/1.28× faster turnaround for
//! our approach over Pairwise/Quasar.

use colocate::harness::{isolated_times, trained_system_for, RunConfig};
use colocate::metrics::normalize;
use colocate::scheduler::{run_schedule, PolicyKind};
use workloads::mixes::table4_mix;

fn main() {
    let catalog = bench_suite::catalog();
    let config: RunConfig = bench_suite::paper_run_config();
    let mix = table4_mix(catalog);
    let iso = isolated_times(catalog, &mix, &config.scheduler, 7).expect("isolated baselines");

    println!("Fig. 8: Table 4 mix — STP and turnaround time");
    println!(
        "{:<14} {:>8} {:>22}",
        "scheduler", "STP", "turnaround (min)"
    );
    bench_suite::rule(48);
    let mut rows = Vec::new();
    for policy in [PolicyKind::Pairwise, PolicyKind::Quasar, PolicyKind::Moe] {
        let system = trained_system_for(policy, catalog, &config, 7).expect("training");
        let outcome = run_schedule(policy, catalog, &mix, system.as_ref(), &config.scheduler, 7)
            .expect("schedule");
        let turnarounds: Vec<f64> = outcome.per_app.iter().map(|a| a.finished_at).collect();
        let metrics = normalize(&iso, &turnarounds);
        println!(
            "{:<14} {:>8.2} {:>22.1}",
            outcome.policy,
            metrics.normalized_stp,
            outcome.makespan_secs / 60.0
        );
        rows.push((metrics.normalized_stp, outcome.makespan_secs));
    }
    bench_suite::rule(48);
    println!(
        "ours vs Pairwise: STP {:.2}x (paper 1.81x), turnaround {:.2}x faster (paper 1.46x)",
        rows[2].0 / rows[0].0,
        rows[0].1 / rows[2].1
    );
    println!(
        "ours vs Quasar:   STP {:.2}x (paper 1.39x), turnaround {:.2}x faster (paper 1.28x)",
        rows[2].0 / rows[1].0,
        rows[1].1 / rows[2].1
    );
}
