//! Fig. 3: observed vs predicted memory footprints for Sort and PageRank.
//!
//! The paper shows that Sort follows the saturating exponential
//! `y = 5.768·(1 − e^(−4.479·x))` and PageRank the Napierian logarithm
//! `y = 16.333 + 1.79·ln x`. This binary calibrates each curve from two
//! profiling points (the §4.1 procedure) and prints observed vs predicted
//! footprints over five decades of input size.

use colocate::predictors::robust_calibrate;
use moe_core::expert::CurveExpert;
use simkit::SimRng;

fn main() {
    let catalog = bench_suite::catalog();
    let mut rng = SimRng::seed_from(0xF163);

    for name in ["HB.Sort", "HB.PageRank"] {
        let bench = catalog.by_name(name).expect("catalog benchmark");
        println!(
            "\nFig. 3 — {name}: ground truth is {} (m = {}, b = {})",
            bench.family().name(),
            bench.curve().m,
            bench.curve().b
        );

        // Two-point calibration at 5 % and 10 % of a 25 GB slice.
        let (x1, x2) = (1.25, 2.5);
        let noise = 0.01;
        let p1 = (x1, bench.true_footprint_gb(x1) * rng.relative_noise(noise));
        let p2 = (x2, bench.true_footprint_gb(x2) * rng.relative_noise(noise));
        let expert = CurveExpert::new(bench.family());
        let model = robust_calibrate(&expert, p1, p2).expect("calibration");

        println!(
            "{:>12} {:>12} {:>12} {:>8}",
            "input (GB)", "observed", "predicted", "err %"
        );
        bench_suite::rule(50);
        for exp10 in -3..=3 {
            for &mant in &[1.0, 3.0] {
                let x = mant * 10f64.powi(exp10);
                if x > 1100.0 {
                    continue;
                }
                let observed = bench.true_footprint_gb(x);
                let predicted = colocate::predictors::FootprintModel::footprint_gb(&model, x);
                let err = if observed > 1e-9 {
                    (predicted - observed).abs() / observed * 100.0
                } else {
                    0.0
                };
                println!("{x:>12.3} {observed:>12.3} {predicted:>12.3} {err:>8.2}");
            }
        }
    }
    println!("\n(The paper's Fig. 3 plots these curves; prediction should track observation.)");
}
