//! The §6.1 "Highlights" block in one run: every headline claim of the
//! paper, measured, with its paper value alongside. Writes CSV series when
//! `SPARK_MOE_CSV_DIR` is set.

use bench_suite::csv::{csv_dir, num, CsvTable};
use colocate::harness::evaluate_scenario_multi_checkpointed;
use colocate::scheduler::PolicyKind;
use simkit::stats::summary::geometric_mean;
use workloads::MixScenario;

fn main() {
    let catalog = bench_suite::catalog();
    let config = bench_suite::paper_run_config();
    let mixes = bench_suite::mixes_per_scenario();
    let policies = [
        PolicyKind::Pairwise,
        PolicyKind::OnlineSearch,
        PolicyKind::Quasar,
        PolicyKind::Moe,
        PolicyKind::Oracle,
    ];

    println!("Measuring §6.1 highlights over {mixes} mixes/scenario ...");
    if mixes < 5 {
        println!("(fewer than 5 mixes/scenario: expect wide variance, especially on ANTT)");
    }
    println!();
    let mut stp: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
    let mut antt: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
    let mut table = CsvTable::new(["scenario", "policy", "stp_mean", "antt_reduction_pct"]);
    for scenario in MixScenario::TABLE3 {
        let ckpt = bench_suite::checkpoint_for(&format!("headlines_{}", scenario.name()));
        let stats = evaluate_scenario_multi_checkpointed(
            &policies,
            scenario,
            catalog,
            &config,
            mixes,
            61,
            ckpt.as_ref(),
        )
        .expect("campaign");
        for (pi, s) in stats.per_policy.iter().enumerate() {
            stp[pi].push(s.stp_mean);
            antt[pi].push(s.antt_mean);
            table.push([
                scenario.name(),
                policies[pi].display_name().to_string(),
                num(s.stp_mean),
                num(s.antt_mean),
            ]);
        }
    }
    let geo = |pi: usize| geometric_mean(&stp[pi]);
    let mean = |pi: usize| antt[pi].iter().sum::<f64>() / antt[pi].len() as f64;
    let (pw, online, quasar, ours, oracle) = (0, 1, 2, 3, 4);

    println!("paper §6.1 highlight                            paper    measured");
    bench_suite::rule(72);
    println!(
        "ours STP over isolated (geomean)                8.69x    {:.2}x",
        geo(ours)
    );
    println!(
        "ours ANTT reduction (mean)                      49 %     {:.1} %",
        mean(ours)
    );
    println!(
        "ours vs Quasar STP                              1.28x    {:.2}x",
        geo(ours) / geo(quasar)
    );
    println!(
        "ours vs Quasar ANTT                             1.68x    {:.2}x",
        mean(ours) / mean(quasar)
    );
    println!(
        "ours / Oracle STP                               83.9 %   {:.1} %",
        geo(ours) / geo(oracle) * 100.0
    );
    println!(
        "ours / Oracle ANTT                              93.4 %   {:.1} %",
        mean(ours) / mean(oracle) * 100.0
    );
    println!(
        "ours vs Pairwise STP (L8-L10)                   1.72x    {:.2}x",
        stp[ours][7..].iter().sum::<f64>() / stp[pw][7..].iter().sum::<f64>()
    );
    println!(
        "ours vs Online Search STP                       2.4x     {:.2}x",
        geo(ours) / geo(online)
    );

    if let Some(dir) = csv_dir() {
        let path = table.write_to(&dir, "paper_headlines").expect("CSV write");
        println!("\nCSV series written to {}", path.display());
    }
}
