//! Table 5: expert-selector prediction accuracy for alternative classifiers.
//!
//! The paper reports (averaged across benchmarks and inputs):
//! Naive Bayes 92.5 %, SVM 95.4 %, MLP 94.1 %, Random Forests 95.5 %,
//! Decision Tree 96.8 %, ANN 96.9 %, KNN 97.4 %. All classifiers use the
//! same scaled + PCA-reduced features; evaluation is leave-one-benchmark-out
//! over the 16 training programs (equivalents excluded), with several noisy
//! profiling observations per held-out benchmark standing in for the
//! different inputs.

use bench_suite::mlcamp;

fn main() -> Result<(), mlcamp::CampaignError> {
    let report = mlcamp::tab05_report(bench_suite::catalog(), simkit::par::available_workers())?;
    print!("{report}");
    Ok(())
}
