//! Table 5: expert-selector prediction accuracy for alternative classifiers.
//!
//! The paper reports (averaged across benchmarks and inputs):
//! Naive Bayes 92.5 %, SVM 95.4 %, MLP 94.1 %, Random Forests 95.5 %,
//! Decision Tree 96.8 %, ANN 96.9 %, KNN 97.4 %. All classifiers use the
//! same scaled + PCA-reduced features; evaluation is leave-one-benchmark-out
//! over the 16 training programs (equivalents excluded), with several noisy
//! profiling observations per held-out benchmark standing in for the
//! different inputs.

use colocate::training::family_expert_id;
use mlkit::forest::{ForestParams, RandomForest};
use mlkit::knn::KnnClassifier;
use mlkit::mlp::{Mlp, MlpParams};
use mlkit::naive_bayes::GaussianNb;
use mlkit::pca::Pca;
use mlkit::scaling::MinMaxScaler;
use mlkit::svm::{LinearSvm, SvmParams};
use mlkit::tree::{DecisionTree, TreeParams};
use mlkit::Classifier;
use simkit::SimRng;
use workloads::signatures;

const OBSERVATIONS_PER_BENCH: usize = 8;

fn main() {
    let catalog = bench_suite::catalog();
    let training = catalog.training_set();
    let mut rng = SimRng::seed_from(0x7AB5);

    // Several profiling observations per training benchmark (different
    // inputs, §5.2's "averaged across benchmarks and inputs") serve as
    // training exemplars; held-out benchmarks are tested on fresh
    // observations.
    const TRAIN_OBS: usize = 4;
    let mut train_features: Vec<Vec<f64>> = Vec::new();
    let mut train_labels: Vec<usize> = Vec::new();
    let mut train_owner: Vec<usize> = Vec::new();
    for (bi, bench) in training.iter().enumerate() {
        for _ in 0..TRAIN_OBS {
            train_features.push(signatures::observe_default(bench, &mut rng).into_vec());
            train_labels.push(family_expert_id(bench.family()).as_usize());
            train_owner.push(bi);
        }
    }

    let names = [
        "Naive Bayes",
        "SVM",
        "MLP",
        "Random Forests",
        "Decision Tree",
        "ANN",
        "KNN",
    ];
    let mut hits = vec![0usize; names.len()];
    let mut total = 0usize;

    for (held_out, bench) in training.iter().enumerate() {
        // Leave-one-out + cross-suite equivalents (§5.2).
        let excluded: std::collections::HashSet<usize> = catalog
            .equivalents_of(bench)
            .iter()
            .map(|b| b.index())
            .chain([bench.index()])
            .collect();
        let fold: Vec<usize> = (0..train_features.len())
            .filter(|&i| !excluded.contains(&training[train_owner[i]].index()))
            .collect();
        let xs_raw: Vec<Vec<f64>> = fold.iter().map(|&i| train_features[i].clone()).collect();
        let ys: Vec<usize> = fold.iter().map(|&i| train_labels[i]).collect();

        let scaler = MinMaxScaler::fit(&xs_raw).expect("scaler");
        let scaled = scaler.transform_batch(&xs_raw).expect("scale");
        // The paper keeps the top five principal components (§3.2).
        let pca = Pca::fit(&scaled, 5).expect("pca");
        let xs = pca.transform_batch(&scaled).expect("project");

        let models: Vec<Box<dyn Classifier>> = vec![
            Box::new(GaussianNb::fit(&xs, &ys).expect("nb")),
            Box::new(
                LinearSvm::fit(
                    &xs,
                    &ys,
                    SvmParams {
                        lambda: 1e-4,
                        epochs: 600,
                        seed: 0x30,
                    },
                )
                .expect("svm"),
            ),
            Box::new(
                Mlp::fit_classifier(
                    &xs,
                    &ys,
                    MlpParams {
                        hidden: 8,
                        epochs: 600,
                        learning_rate: 0.05,
                        seed: 0x31,
                    },
                )
                .expect("mlp")
                .with_name("MLP"),
            ),
            Box::new(RandomForest::fit(&xs, &ys, ForestParams::default()).expect("rf")),
            Box::new(DecisionTree::fit(&xs, &ys, TreeParams::default()).expect("dt")),
            Box::new(
                Mlp::fit_classifier(
                    &xs,
                    &ys,
                    MlpParams {
                        hidden: 16,
                        epochs: 1200,
                        learning_rate: 0.03,
                        seed: 0x32,
                    },
                )
                .expect("ann"),
            ),
            Box::new(KnnClassifier::fit(&xs, &ys, 1).expect("knn")),
        ];

        let want = family_expert_id(bench.family()).as_usize();
        let _ = held_out;
        for _ in 0..OBSERVATIONS_PER_BENCH {
            let obs = signatures::observe_default(bench, &mut rng);
            let scaled = scaler.transform(obs.as_slice()).expect("scale");
            let projected = pca.transform(&scaled).expect("project");
            total += 1;
            for (mi, model) in models.iter().enumerate() {
                if model.predict(&projected) == want {
                    hits[mi] += 1;
                }
            }
        }
    }

    println!("Table 5: expert-selector accuracy per classifier");
    println!(
        "{:<16} {:>12} {:>12}",
        "classifier", "measured %", "paper %"
    );
    bench_suite::rule(44);
    let paper = [92.5, 95.4, 94.1, 95.5, 96.8, 96.9, 97.4];
    for ((name, &h), &p) in names.iter().zip(hits.iter()).zip(paper.iter()) {
        println!(
            "{:<16} {:>12.1} {:>12.1}",
            name,
            h as f64 / total as f64 * 100.0,
            p
        );
    }
    bench_suite::rule(44);
    println!("({} held-out predictions per classifier)", total);
}
