//! Fig. 10: our approach vs online descent search for the right input size
//! under a memory budget. The paper measures 2.4× better STP and 2.6×
//! better ANTT for our approach — the search overhead dominates and grows
//! with cluster size.

use colocate::harness::evaluate_scenario_multi_checkpointed;
use colocate::scheduler::PolicyKind;
use simkit::stats::summary::geometric_mean;
use workloads::MixScenario;

fn main() {
    let catalog = bench_suite::catalog();
    let config = bench_suite::paper_run_config();
    let mixes = bench_suite::mixes_per_scenario();
    let policies = [PolicyKind::OnlineSearch, PolicyKind::Moe];

    println!("Fig. 10: online search vs our approach ({mixes} mixes/scenario)");
    println!(
        "{:<5} {:>14} {:>14}   {:>14} {:>14}",
        "", "search STP", "ours STP", "search ANTTred", "ours ANTTred"
    );
    let mut all = Vec::new();
    for scenario in MixScenario::TABLE3 {
        let ckpt = bench_suite::checkpoint_for(&format!("fig10_{}", scenario.name()));
        let stats = evaluate_scenario_multi_checkpointed(
            &policies,
            scenario,
            catalog,
            &config,
            mixes,
            10,
            ckpt.as_ref(),
        )
        .expect("campaign");
        println!(
            "{:<5} {:>14.2} {:>14.2}   {:>13.1}% {:>13.1}%",
            stats.scenario.name(),
            stats.per_policy[0].stp_mean,
            stats.per_policy[1].stp_mean,
            stats.per_policy[0].antt_mean,
            stats.per_policy[1].antt_mean,
        );
        all.push(stats);
    }
    bench_suite::rule(70);
    let geo = |pi: usize| {
        geometric_mean(
            &all.iter()
                .map(|s| s.per_policy[pi].stp_mean)
                .collect::<Vec<_>>(),
        )
    };
    let antt =
        |pi: usize| all.iter().map(|s| s.per_policy[pi].antt_mean).sum::<f64>() / all.len() as f64;
    println!(
        "ours vs online search — STP {:.1}x (paper 2.4x), ANTT reduction {:.1}x (paper 2.6x)",
        geo(1) / geo(0),
        antt(1) / antt(0).max(1e-9),
    );
}
