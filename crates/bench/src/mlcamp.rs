//! ML evaluation campaigns behind the figure binaries.
//!
//! The five ML-pipeline binaries (`fig04_pca`, `fig16_clusters`,
//! `fig17_accuracy`, `fig18_curves`, `tab05_classifiers`) are thin shells
//! over the report builders here, which return the full stdout text as a
//! `String` and surface failures as errors instead of panicking.
//!
//! The leave-one-out campaigns (Figs. 17/18, Table 5) fan their folds out
//! across worker threads via [`simkit::par::par_map_indexed`]:
//!
//! * fold systems come from [`train_loocv_all`], which profiles the
//!   training set once, serially, from the campaign seed;
//! * every fold that needs randomness (profiling the held-out target)
//!   gets its own [`SimRng`] seeded by [`fold_seed`] from the campaign
//!   seed and the fold index — no shared mutable stream;
//! * results are committed in fold order.
//!
//! A report is therefore a pure function of `(catalog, seed)` — bit for
//! bit identical at every worker count, which
//! `tests/ml_campaign_determinism.rs` and the CI bit-identity gate pin.

use colocate::predictors::{MemoryPredictor, MoePolicy};
use colocate::profiling::{profile_app, ProfilingConfig};
use colocate::training::{
    family_expert_id, loocv_exclusions, train_loocv_all, train_system, TrainingConfig,
};
use mlkit::forest::{ForestParams, RandomForest};
use mlkit::kmeans::{cluster_label_agreement, KMeans, KMeansParams};
use mlkit::knn::KnnClassifier;
use mlkit::linalg::pearson;
use mlkit::mlp::{Mlp, MlpParams};
use mlkit::naive_bayes::GaussianNb;
use mlkit::pca::Pca;
use mlkit::regression::CurveFamily;
use mlkit::scaling::MinMaxScaler;
use mlkit::svm::{LinearSvm, SvmParams};
use mlkit::tree::{DecisionTree, TreeParams};
use mlkit::Classifier;
use simkit::par::par_map_indexed;
use simkit::SimRng;
use sparklite::ClusterSpec;
use std::fmt::Write as _;
use workloads::catalog::Catalog;
use workloads::signatures;

/// Error type of campaign report builders (thread-safe so fold failures
/// can cross worker boundaries).
pub type CampaignError = Box<dyn std::error::Error + Send + Sync>;

/// Derives the RNG seed of fold `index` from a campaign seed
/// (splitmix64-style odd-constant mixing, so neighbouring folds get
/// uncorrelated streams).
#[must_use]
pub fn fold_seed(campaign_seed: u64, index: usize) -> u64 {
    let mut z = campaign_seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn hr(out: &mut String, width: usize) {
    out.push_str(&"-".repeat(width));
    out.push('\n');
}

// ---------------------------------------------------------------------------
// Fig. 17 — predicted vs measured footprints under LOOCV.
// ---------------------------------------------------------------------------

/// Builds the Fig. 17 report: predicted vs measured footprint per training
/// benchmark (~280 GB inputs), leave-one-out.
///
/// # Errors
///
/// Propagates training and prediction failures.
pub fn fig17_report(catalog: &Catalog, workers: usize) -> Result<String, CampaignError> {
    fig17_report_with_cache(catalog, workers).map(|(report, _, _)| report)
}

/// [`fig17_report`] plus the campaign's selection-cache counters: returns
/// `(report, cache_hits, cache_misses)` summed over every fold's
/// [`PredictionTable`](colocate::predictors::PredictionTable). The report
/// string is exactly [`fig17_report`]'s, so callers can surface
/// memoization effectiveness without disturbing the pinned stdout.
///
/// # Errors
///
/// Propagates training and prediction failures.
pub fn fig17_report_with_cache(
    catalog: &Catalog,
    workers: usize,
) -> Result<(String, u64, u64), CampaignError> {
    const SEED: u64 = 0xF1617;
    const INPUT_GB: f64 = 280.0;
    let testbed = ClusterSpec::paper_cluster();
    let config = TrainingConfig::default();
    let profiling = ProfilingConfig::default();
    let targets = catalog.training_set();
    let systems = train_loocv_all(catalog, &targets, &config, SEED, workers)?;
    let folds: Vec<_> = targets.into_iter().zip(systems).collect();

    let rows = par_map_indexed(&folds, workers, |i, (bench, system)| {
        let mut rng = SimRng::seed_from(fold_seed(SEED, i));
        let moe = MoePolicy::new(system.clone());
        let (profile, _) = profile_app(
            bench,
            INPUT_GB,
            testbed.nodes,
            testbed.node.ram_gb,
            &profiling,
            &mut rng,
        );
        let prediction = moe.predict(&profile)?;
        let slice = profile.expected_slice_gb;
        let predicted = prediction.model.footprint_gb(slice);
        let measured = bench.true_footprint_gb(slice);
        let err = (predicted - measured) / measured * 100.0;
        Ok::<_, CampaignError>((
            format!(
                "{:<20} {predicted:>10.2} {measured:>10.2} {err:>+8.1}\n",
                bench.name()
            ),
            err.abs(),
        ))
    });

    let mut out = String::new();
    out.push_str("Fig. 17: predicted vs measured footprint (GB), ~280 GB inputs, LOOCV\n");
    let _ = writeln!(
        out,
        "{:<20} {:>10} {:>10} {:>8}",
        "benchmark", "predicted", "measured", "err %"
    );
    hr(&mut out, 52);
    let mut errors = Vec::with_capacity(rows.len());
    for row in rows {
        let (line, abs_err) = row?;
        out.push_str(&line);
        errors.push(abs_err);
    }
    hr(&mut out, 52);
    let mean = errors.iter().sum::<f64>() / errors.len() as f64;
    let under5 = errors.iter().filter(|e| **e < 5.0).count();
    let _ = writeln!(
        out,
        "mean |error| {mean:.1} % — {under5}/16 under 5 % (paper: ~5 % average, most under 5 %)"
    );
    let hits = folds.iter().map(|(_, s)| s.selections.hits()).sum::<u64>();
    let misses = folds
        .iter()
        .map(|(_, s)| s.selections.misses())
        .sum::<u64>();
    Ok((out, hits, misses))
}

// ---------------------------------------------------------------------------
// Fig. 18 — predicted vs measured curves over a size sweep.
// ---------------------------------------------------------------------------

/// Builds the Fig. 18 report: per-benchmark predicted vs measured
/// footprint curves over a slice-size sweep, leave-one-out.
///
/// # Errors
///
/// Propagates training and prediction failures.
pub fn fig18_report(catalog: &Catalog, workers: usize) -> Result<String, CampaignError> {
    const SEED: u64 = 0xF1618;
    let sweep = [0.003, 0.03, 0.3, 3.0, 10.0, 30.0, 64.0];
    let testbed = ClusterSpec::paper_cluster();
    let config = TrainingConfig::default();
    let profiling = ProfilingConfig::default();
    let targets = catalog.training_set();
    let systems = train_loocv_all(catalog, &targets, &config, SEED, workers)?;
    let folds: Vec<_> = targets.into_iter().zip(systems).collect();

    let panels = par_map_indexed(&folds, workers, |i, (bench, system)| {
        let mut rng = SimRng::seed_from(fold_seed(SEED, i));
        let moe = MoePolicy::new(system.clone());
        let (profile, _) = profile_app(
            bench,
            280.0,
            testbed.nodes,
            testbed.node.ram_gb,
            &profiling,
            &mut rng,
        );
        let prediction = moe.predict(&profile)?;

        let mut panel = String::new();
        let _ = writeln!(panel, "\n{} — {}", bench.name(), bench.family().name());
        let _ = writeln!(
            panel,
            "{:>10} {:>10} {:>10} {:>8}",
            "slice GB", "measured", "predicted", "err %"
        );
        for &x in &sweep {
            let measured = bench.true_footprint_gb(x);
            let predicted = prediction.model.footprint_gb(x);
            let err = if measured > 1e-9 {
                (predicted - measured) / measured * 100.0
            } else {
                0.0
            };
            let _ = writeln!(
                panel,
                "{x:>10.3} {measured:>10.2} {predicted:>10.2} {err:>+8.1}"
            );
        }
        Ok::<_, CampaignError>(panel)
    });

    let mut out = String::new();
    out.push_str("Fig. 18: predicted vs measured footprints (GB) over executor slice sizes\n");
    for panel in panels {
        out.push_str(&panel?);
    }
    out.push_str("\n(The paper plots these per-benchmark curves in eight panels.)\n");
    Ok(out)
}

// ---------------------------------------------------------------------------
// Table 5 — expert-selector accuracy per classifier.
// ---------------------------------------------------------------------------

/// Builds the Table 5 report: leave-one-benchmark-out accuracy of seven
/// classifiers on the expert-selection task.
///
/// All randomness (training and test observations) is drawn serially up
/// front in the historical `0x7AB5` stream order, so the report is byte
/// identical to the original serial implementation; the per-fold model
/// fitting (which consumes no shared randomness) fans out across workers.
///
/// # Errors
///
/// Propagates preprocessing and model-fitting failures.
pub fn tab05_report(catalog: &Catalog, workers: usize) -> Result<String, CampaignError> {
    const SEED: u64 = 0x7AB5;
    const TRAIN_OBS: usize = 4;
    const OBSERVATIONS_PER_BENCH: usize = 8;
    let training = catalog.training_set();
    let mut rng = SimRng::seed_from(SEED);

    // Several profiling observations per training benchmark (different
    // inputs, §5.2's "averaged across benchmarks and inputs") serve as
    // training exemplars; held-out benchmarks are tested on fresh
    // observations. Both sets are drawn here, serially, in exactly the
    // order the serial fold loop drew them.
    let mut train_features: Vec<Vec<f64>> = Vec::new();
    let mut train_labels: Vec<usize> = Vec::new();
    let mut train_owner: Vec<usize> = Vec::new();
    for (bi, bench) in training.iter().enumerate() {
        for _ in 0..TRAIN_OBS {
            train_features.push(signatures::observe_default(bench, &mut rng).into_vec());
            train_labels.push(family_expert_id(bench.family()).as_usize());
            train_owner.push(bi);
        }
    }
    let test_obs: Vec<Vec<Vec<f64>>> = training
        .iter()
        .map(|bench| {
            (0..OBSERVATIONS_PER_BENCH)
                .map(|_| signatures::observe_default(bench, &mut rng).into_vec())
                .collect()
        })
        .collect();

    let names = [
        "Naive Bayes",
        "SVM",
        "MLP",
        "Random Forests",
        "Decision Tree",
        "ANN",
        "KNN",
    ];

    let fold_hits = par_map_indexed(&training, workers, |held_out, bench| {
        // Leave-one-out + cross-suite equivalents (§5.2).
        let excluded = loocv_exclusions(catalog, bench);
        let fold: Vec<usize> = (0..train_features.len())
            .filter(|&i| !excluded.contains(&training[train_owner[i]].index()))
            .collect();
        let xs_raw: Vec<Vec<f64>> = fold.iter().map(|&i| train_features[i].clone()).collect();
        let ys: Vec<usize> = fold.iter().map(|&i| train_labels[i]).collect();

        let scaler = MinMaxScaler::fit(&xs_raw)?;
        let scaled = scaler.transform_batch(&xs_raw)?;
        // The paper keeps the top five principal components (§3.2).
        let pca = Pca::fit(&scaled, 5)?;
        let xs = pca.transform_batch(&scaled)?;

        let models: Vec<Box<dyn Classifier>> = vec![
            Box::new(GaussianNb::fit(&xs, &ys)?),
            Box::new(LinearSvm::fit(
                &xs,
                &ys,
                SvmParams {
                    lambda: 1e-4,
                    epochs: 600,
                    seed: 0x30,
                },
            )?),
            Box::new(
                Mlp::fit_classifier(
                    &xs,
                    &ys,
                    MlpParams {
                        hidden: 8,
                        epochs: 600,
                        learning_rate: 0.05,
                        seed: 0x31,
                    },
                )?
                .with_name("MLP"),
            ),
            Box::new(RandomForest::fit(&xs, &ys, ForestParams::default())?),
            Box::new(DecisionTree::fit(&xs, &ys, TreeParams::default())?),
            Box::new(Mlp::fit_classifier(
                &xs,
                &ys,
                MlpParams {
                    hidden: 16,
                    epochs: 1200,
                    learning_rate: 0.03,
                    seed: 0x32,
                },
            )?),
            Box::new(KnnClassifier::fit(&xs, &ys, 1)?),
        ];

        let want = family_expert_id(bench.family()).as_usize();
        let mut hits = vec![0usize; names.len()];
        let mut total = 0usize;
        for obs in &test_obs[held_out] {
            let scaled = scaler.transform(obs)?;
            let projected = pca.transform(&scaled)?;
            total += 1;
            for (mi, model) in models.iter().enumerate() {
                if model.predict(&projected) == want {
                    hits[mi] += 1;
                }
            }
        }
        Ok::<_, CampaignError>((hits, total))
    });

    let mut hits = vec![0usize; names.len()];
    let mut total = 0usize;
    for fold in fold_hits {
        let (fh, ft) = fold?;
        for (h, f) in hits.iter_mut().zip(fh) {
            *h += f;
        }
        total += ft;
    }

    let mut out = String::new();
    out.push_str("Table 5: expert-selector accuracy per classifier\n");
    let _ = writeln!(
        out,
        "{:<16} {:>12} {:>12}",
        "classifier", "measured %", "paper %"
    );
    hr(&mut out, 44);
    let paper = [92.5, 95.4, 94.1, 95.5, 96.8, 96.9, 97.4];
    for ((name, &h), &p) in names.iter().zip(hits.iter()).zip(paper.iter()) {
        let _ = writeln!(
            out,
            "{:<16} {:>12.1} {:>12.1}",
            name,
            h as f64 / total as f64 * 100.0,
            p
        );
    }
    hr(&mut out, 44);
    let _ = writeln!(out, "({} held-out predictions per classifier)", total);

    // Memoization footer: route one observation per training benchmark
    // through a deployed system's PredictionTable twice. Everything here is
    // serial and seeded, so the line is identical at every worker count.
    let mut cache_rng = SimRng::seed_from(fold_seed(SEED, training.len()));
    let system = train_system(catalog, &TrainingConfig::default(), &mut cache_rng)?;
    let obs: Vec<_> = training
        .iter()
        .map(|bench| signatures::observe_default(bench, &mut cache_rng))
        .collect();
    let refs: Vec<_> = obs.iter().collect();
    system
        .selections
        .select_cached_batch(&system.predictor, &refs)?;
    system
        .selections
        .select_cached_batch(&system.predictor, &refs)?;
    let _ = writeln!(
        out,
        "selection cache: {} misses then {} hits on replay ({} entries)",
        system.selections.misses(),
        system.selections.hits(),
        system.selections.len()
    );
    Ok(out)
}

// ---------------------------------------------------------------------------
// Fig. 4a — explained variance per principal component.
// ---------------------------------------------------------------------------

/// Builds the Fig. 4a report: fraction of feature variance explained per
/// principal component.
///
/// # Errors
///
/// Propagates scaling and PCA failures.
pub fn fig04_report(catalog: &Catalog) -> Result<String, CampaignError> {
    let mut rng = SimRng::seed_from(0xF164);

    let mut rows: Vec<Vec<f64>> = Vec::new();
    for bench in catalog.training_set() {
        for _ in 0..4 {
            rows.push(signatures::observe_default(bench, &mut rng).into_vec());
        }
    }
    let scaler = MinMaxScaler::fit(&rows)?;
    let scaled = scaler.transform_batch(&rows)?;
    let full = Pca::fit(&scaled, 22)?;
    let ratios = full.explained_variance_ratio();

    let mut out = String::new();
    out.push_str("Fig. 4a: percentage of overall feature variance per PC\n");
    hr(&mut out, 40);
    let mut cumulative = 0.0;
    let mut covering_95 = None;
    for (i, r) in ratios.iter().enumerate() {
        cumulative += r;
        if covering_95.is_none() && cumulative >= 0.95 {
            covering_95 = Some(i + 1);
        }
        if i < 6 {
            let _ = writeln!(
                out,
                "PC{:<2} {:6.1} %   (cumulative {:5.1} %)",
                i + 1,
                r * 100.0,
                cumulative * 100.0
            );
        }
    }
    let rest: f64 = ratios.iter().skip(6).sum();
    let _ = writeln!(out, "rest {:6.1} %", rest * 100.0);
    hr(&mut out, 40);
    let _ = writeln!(
        out,
        "components needed for 95 % variance: {} (paper: 5)",
        covering_95.unwrap_or(ratios.len())
    );
    Ok(out)
}

// ---------------------------------------------------------------------------
// Fig. 16 — benchmark clusters in PCA space.
// ---------------------------------------------------------------------------

/// Builds the Fig. 16 report: the 44 benchmarks in (PC1, PC2) space, the
/// per-family Pearson tightness check and the unsupervised k-means
/// cross-check.
///
/// # Errors
///
/// Propagates scaling, PCA and k-means failures.
pub fn fig16_report(catalog: &Catalog) -> Result<String, CampaignError> {
    let mut rng = SimRng::seed_from(0xF1616);

    let raw: Vec<Vec<f64>> = catalog
        .all()
        .iter()
        .map(|b| signatures::observe_default(b, &mut rng).into_vec())
        .collect();
    let scaler = MinMaxScaler::fit(&raw)?;
    let scaled = scaler.transform_batch(&raw)?;
    let pca = Pca::fit(&scaled, 2)?;
    let projected = pca.transform_batch(&scaled)?;

    let mut out = String::new();
    out.push_str("Fig. 16: program feature space (PC1, PC2), one point per benchmark\n");
    let _ = writeln!(
        out,
        "{:<24} {:>8} {:>8}  memory function",
        "benchmark", "PC1", "PC2"
    );
    hr(&mut out, 72);
    for (bench, point) in catalog.all().iter().zip(projected.iter()) {
        let _ = writeln!(
            out,
            "{:<24} {:>8.3} {:>8.3}  {}",
            bench.name(),
            point[0],
            point[1],
            bench.family().name()
        );
    }

    // Cluster tightness: Pearson correlation of each program's (PC1, PC2)
    // against its family centroid, as in §6.9.
    hr(&mut out, 72);
    for family in CurveFamily::ALL {
        // The paper's per-cluster similarity check: Pearson correlation of
        // each member's feature vector against the cluster centre. Two
        // PCA coordinates are too few points for a meaningful correlation,
        // so the full 22-d scaled vectors are used.
        let mut min_corr = f64::INFINITY;
        // Raw (unscaled) vectors, as a profiling tool would compare them:
        // large-magnitude counters dominate, which is what drives the
        // paper's near-perfect correlations.
        let full_members: Vec<Vec<f64>> = catalog
            .all()
            .iter()
            .zip(raw.iter())
            .filter(|(b, _)| b.family() == family)
            .map(|(_, s)| s.iter().map(|v| (1.0 + v.abs()).log10()).collect())
            .collect();
        let dims = full_members[0].len();
        let center: Vec<f64> = (0..dims)
            .map(|d| full_members.iter().map(|m| m[d]).sum::<f64>() / full_members.len() as f64)
            .collect();
        for m in &full_members {
            min_corr = min_corr.min(pearson(m, &center));
        }
        let _ = writeln!(
            out,
            "{:<36} members {:>2}  min Pearson r to centre {:.4}",
            family.name(),
            full_members.len(),
            min_corr
        );
    }
    out.push_str("(paper: three clusters, correlation to cluster centre > 0.9999)\n");

    // Unsupervised confirmation: k-means with k = 3 over the scaled
    // features should rediscover the three memory-function families
    // without ever seeing the labels.
    // Cluster in the selector's own representation (top principal
    // components) — the noisy tail features would otherwise blur the
    // boundaries.
    let pca5 = Pca::fit(&scaled, 5)?;
    let projected5 = pca5.transform_batch(&scaled)?;
    let km = KMeans::fit(&projected5, KMeansParams::default())?;
    let labels: Vec<usize> = catalog
        .all()
        .iter()
        .map(|b| {
            CurveFamily::ALL
                .iter()
                .position(|&f| f == b.family())
                .unwrap_or(0)
        })
        .collect();
    let agreement = cluster_label_agreement(km.assignments(), &labels);
    let _ = writeln!(
        out,
        "k-means (k=3, unsupervised) agreement with memory-function families: {:.1} %",
        agreement * 100.0
    );
    Ok(out)
}
