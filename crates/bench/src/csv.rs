//! Minimal CSV writing for machine-readable experiment output.
//!
//! Every figure binary prints human-readable tables to stdout; with
//! `SPARK_MOE_CSV_DIR=<dir>` set, campaign binaries additionally drop CSV
//! series there for plotting. Quoting follows RFC 4180 for the small
//! subset needed (fields containing commas, quotes or newlines).

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A CSV table under construction.
#[derive(Debug, Clone)]
pub struct CsvTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl CsvTable {
    /// Starts a table with the given column names.
    #[must_use]
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        CsvTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header.
    pub fn push<S: Into<String>>(&mut self, row: impl IntoIterator<Item = S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders to CSV text.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let write_row = |out: &mut String, row: &[String]| {
            for (i, field) in row.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&escape(field));
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Writes the table as `<dir>/<name>.csv` via an atomic
    /// temp-file-then-rename ([`crate::fsutil::atomic_write`]), so a kill
    /// mid-write never leaves a truncated series behind.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, dir: &Path, name: &str) -> std::io::Result<PathBuf> {
        crate::fsutil::atomic_write_in(dir, &format!("{name}.csv"), &self.to_csv())
    }
}

/// Formats a float with enough digits for replotting.
#[must_use]
pub fn num(v: f64) -> String {
    let mut s = String::new();
    let _ = write!(s, "{v:.6}");
    s
}

/// The CSV output directory from `SPARK_MOE_CSV_DIR`, if configured.
#[must_use]
pub fn csv_dir() -> Option<PathBuf> {
    std::env::var_os("SPARK_MOE_CSV_DIR").map(PathBuf::from)
}

fn escape(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_simple_tables() {
        let mut t = CsvTable::new(["scenario", "stp"]);
        t.push(["L1", "1.94"]);
        t.push(["L10", "13.46"]);
        assert_eq!(t.to_csv(), "scenario,stp\nL1,1.94\nL10,13.46\n");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn escapes_delimiters_and_quotes() {
        let mut t = CsvTable::new(["name"]);
        t.push(["a,b"]);
        t.push(["say \"hi\""]);
        assert_eq!(t.to_csv(), "name\n\"a,b\"\n\"say \"\"hi\"\"\"\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = CsvTable::new(["a", "b"]);
        t.push(["only one"]);
    }

    #[test]
    fn writes_files() {
        let dir = std::env::temp_dir().join("spark_moe_csv_test");
        let mut t = CsvTable::new(["x"]);
        t.push([num(1.5)]);
        let path = t.write_to(&dir, "probe").unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("1.500000"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
