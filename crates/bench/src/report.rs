//! Deterministic JSON emission for machine-readable campaign records.
//!
//! The `BENCH_*.json` artifacts must be byte-stable: the kill–resume
//! acceptance test asserts an interrupted-and-resumed campaign produces
//! the *identical* file an uninterrupted one does. These emitters
//! therefore avoid anything nondeterministic — no hash-map iteration, no
//! timestamps — and format floats with Rust's shortest-round-trip `{:?}`,
//! which is a pure function of the `f64` bits.

use colocate::harness::{ChaosStats, MultiPolicyStats, ScenarioStats};
use colocate::invariants::{preset_label, SearchReport};
use colocate::service::OpenLoopStats;
use std::fmt::Write as _;

/// Shortest-round-trip JSON number for `v` (infinite/NaN become `null`).
#[must_use]
pub fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// Escapes a string for a JSON literal.
#[must_use]
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn push_scenario(out: &mut String, label: &str, s: &ScenarioStats) {
    let _ = write!(
        out,
        "{{\"label\":{},\"scenario\":{},\"mixes\":{},\"stp_mean\":{},\"stp_min\":{},\
         \"stp_max\":{},\"antt_mean\":{},\"antt_min\":{},\"antt_max\":{}}}",
        json_str(label),
        json_str(&s.scenario.name()),
        s.mixes,
        json_num(s.stp_mean),
        json_num(s.stp_min_max.0),
        json_num(s.stp_min_max.1),
        json_num(s.antt_mean),
        json_num(s.antt_min_max.0),
        json_num(s.antt_min_max.1),
    );
}

/// Renders one [`ScenarioStats`] as a JSON object.
#[must_use]
pub fn scenario_stats_json(label: &str, stats: &ScenarioStats) -> String {
    let mut out = String::new();
    push_scenario(&mut out, label, stats);
    out.push('\n');
    out
}

/// Renders a multi-policy campaign (`policy labels` parallel to
/// `stats.per_policy`) as a JSON document.
#[must_use]
pub fn multi_stats_json(labels: &[&str], stats: &MultiPolicyStats) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"scenario\":{},\"per_policy\":[",
        json_str(&stats.scenario.name())
    );
    for (i, (label, s)) in labels.iter().zip(&stats.per_policy).enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_scenario(&mut out, label, s);
    }
    out.push_str("]}\n");
    out
}

/// Renders a chaos sweep (one [`ChaosStats`] per intensity) as a JSON
/// document — the `BENCH_fig19_chaos.json` record.
#[must_use]
pub fn chaos_stats_json(all: &[ChaosStats]) -> String {
    let mut out = String::from("{\"campaigns\":[");
    for (i, stats) in all.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"scenario\":{},\"intensity\":{},\"mixes\":{},\"per_entry\":[",
            json_str(&stats.scenario.name()),
            json_num(stats.intensity),
            stats.mixes,
        );
        for (j, e) in stats.per_entry.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let f = &e.faults;
            let _ = write!(
                out,
                "{{\"label\":{},\"stp_mean\":{},\"stp_min\":{},\"stp_max\":{},\
                 \"antt_mean\":{},\"antt_min\":{},\"antt_max\":{},\"oom_kills_mean\":{},\
                 \"faults\":{{\"node_crashes\":{},\"executor_crashes\":{},\
                 \"monitor_dropouts\":{},\"prediction_noise\":{},\"slices_requeued_gb\":{},\
                 \"retries\":{},\"quarantines\":{},\"isolated_fallbacks\":{}}}}}",
                json_str(e.label),
                json_num(e.stp_mean),
                json_num(e.stp_min_max.0),
                json_num(e.stp_min_max.1),
                json_num(e.antt_mean),
                json_num(e.antt_min_max.0),
                json_num(e.antt_min_max.1),
                json_num(e.oom_kills_mean),
                f.node_crashes,
                f.executor_crashes,
                f.monitor_dropouts,
                f.prediction_noise,
                json_num(f.slices_requeued_gb),
                f.retries,
                f.quarantines,
                f.isolated_fallbacks,
            );
        }
        out.push_str("]}");
    }
    out.push_str("]}\n");
    out
}

/// Renders an open-loop sweep (one [`OpenLoopStats`] per load factor) as
/// a JSON document — the `BENCH_openloop.json` record.
#[must_use]
pub fn openloop_stats_json(all: &[(f64, OpenLoopStats)]) -> String {
    let mut out = String::from("{\"campaigns\":[");
    for (i, (load, stats)) in all.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"load_factor\":{},\"replications\":{},\"per_entry\":[",
            json_num(*load),
            stats.replications,
        );
        for (j, e) in stats.per_entry.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let f = &e.faults;
            let _ = write!(
                out,
                "{{\"label\":{},\"arrivals\":{},\"finished\":{},\"shed\":{},\
                 \"slowdown_p50\":{},\"slowdown_p95\":{},\"slowdown_p99\":{},\
                 \"slowdown_mean\":{},\"oom_kills\":{},\"deferrals\":{},\
                 \"abstain_placements\":{},\"breaker_trips\":{},\
                 \"max_queue_depth\":{},\"mean_queue_depth\":{},\
                 \"faults\":{{\"node_crashes\":{},\"executor_crashes\":{},\
                 \"monitor_dropouts\":{},\"prediction_noise\":{},\"slices_requeued_gb\":{},\
                 \"retries\":{},\"quarantines\":{},\"isolated_fallbacks\":{},\
                 \"spot_preemptions\":{},\"drains\":{}}}}}",
                json_str(e.label),
                e.arrivals,
                e.finished,
                e.shed,
                json_num(e.slowdown_p50),
                json_num(e.slowdown_p95),
                json_num(e.slowdown_p99),
                json_num(e.slowdown_mean),
                e.oom_kills,
                e.deferrals,
                e.abstain_placements,
                e.breaker_trips,
                e.max_queue_depth,
                json_num(e.mean_queue_depth),
                f.node_crashes,
                f.executor_crashes,
                f.monitor_dropouts,
                f.prediction_noise,
                json_num(f.slices_requeued_gb),
                f.retries,
                f.quarantines,
                f.isolated_fallbacks,
                f.spot_preemptions,
                f.drains,
            );
        }
        out.push_str("]}");
    }
    out.push_str("]}\n");
    out
}

/// Renders a chaos-search campaign as a JSON document — the
/// `BENCH_chaossearch.json` record.
///
/// `episodes_per_sec` is `None` unless wall-clock timing was explicitly
/// requested (`SPARK_MOE_CHAOS_TIMING=1`): the default record must stay a
/// pure function of the search inputs so worker-count bit-identity holds
/// on the artifact itself. Every violation entry embeds its delta-debugged
/// minimal reproducer verbatim ([`Episode::to_json`](simkit::chaoskit::Episode::to_json)),
/// so a record is also a replay kit.
#[must_use]
pub fn chaossearch_json(report: &SearchReport, episodes_per_sec: Option<f64>) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"episodes\":{},\"base_seed\":{},\"violations_found\":{},\"episodes_per_sec\":{},\
         \"violations\":[",
        report.episodes,
        report.base_seed,
        report.violations.len(),
        episodes_per_sec.map_or_else(|| "null".to_string(), json_num),
    );
    for (i, v) in report.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"episode_index\":{},\"seed\":{},\"preset\":{},\"invariant\":{},\"detail\":{},\
             \"original_faults\":{},\"original_arrivals\":{},\"shrunk_faults\":{},\
             \"shrunk_arrivals\":{},\"shrink_checks\":{},\"shrink_exhausted\":{},\
             \"reproducer\":{}}}",
            v.index,
            v.original.seed,
            json_str(preset_label(v.original.preset)),
            json_str(&v.violation.invariant),
            json_str(&v.violation.detail),
            v.original.faults.len(),
            v.original.arrivals.len(),
            v.shrink.episode.faults.len(),
            v.shrink.episode.arrivals.len(),
            v.shrink.checks,
            v.shrink.exhausted,
            v.shrink.episode.to_json(),
        );
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_are_shortest_round_trip() {
        assert_eq!(json_num(1.5), "1.5");
        assert_eq!(json_num(0.1 + 0.2), "0.30000000000000004");
        assert_eq!(json_num(f64::NAN), "null");
        assert_eq!(json_num(f64::INFINITY), "null");
    }

    #[test]
    fn strings_escape_control_characters() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_str("tab\tdone"), "\"tab\\tdone\"");
    }

    #[test]
    fn chaossearch_record_is_stable_and_omits_timing_by_default() {
        let report = SearchReport {
            episodes: 8,
            base_seed: 42,
            violations: Vec::new(),
        };
        let json = chaossearch_json(&report, None);
        assert_eq!(
            json,
            "{\"episodes\":8,\"base_seed\":42,\"violations_found\":0,\
             \"episodes_per_sec\":null,\"violations\":[]}\n"
        );
        let timed = chaossearch_json(&report, Some(12.5));
        assert!(timed.contains("\"episodes_per_sec\":12.5"));
    }
}
