//! Shared workload builders for the cluster-scale sweep.
//!
//! `benches/scale.rs` (Criterion micro-benchmarks) and the `fig20_scale`
//! driver (the `results/BENCH_scale.json` record) measure the same two
//! hot loops at growing node counts:
//!
//! * **queue hold churn** — the classic hold benchmark against
//!   [`simkit::EventQueue`] on both backends: a stationary population
//!   proportional to cluster size, each step popping the minimum and
//!   pushing a replacement (with periodic cancel-and-replace), which is
//!   exactly the steady-state shape of a simulation tick loop (the
//!   binary-heap baseline pays `log n` per operation at every depth; the
//!   calendar queue's bucket hops are O(1) amortized);
//! * **completion churn** — the scheduler's inner loop
//!   (`next_completion` → `advance` → `complete` → respawn) against a
//!   fully loaded engine, under both rate-cache modes (the whole-placement
//!   baseline vs per-node shards).
//!
//! Keeping the builders here guarantees the bench and the driver measure
//! identical work.

use mlkit::regression::{CurveFamily, FittedCurve};
use simkit::{EventQueue, QueueBackend, SimDuration, SimTime};
use sparklite::app::AppSpec;
use sparklite::cluster::ClusterSpec;
use sparklite::engine::{ClusterEngine, RateCacheMode};
use sparklite::perf::InterferenceModel;
use sparklite::{AppId, ExecutorId};

/// Executors per node in the scale engines (two co-located slices, the
/// paper's common case).
pub const EXECUTORS_PER_NODE: usize = 2;

/// Slice size (GB) of the `k`-th spawned executor: 250–495 GB, cycling so
/// completions stagger instead of arriving in lockstep cohorts.
#[must_use]
pub fn slice_gb(k: usize) -> f64 {
    250.0 + ((k * 37) % 50) as f64 * 5.0
}

fn scale_app(name: &str, cpu: f64) -> AppSpec {
    AppSpec {
        name: name.into(),
        // Effectively bottomless input: the respawn loop never drains it.
        input_gb: 1e15,
        rate_gb_per_s: 1.0,
        cpu_util: cpu,
        memory_curve: FittedCurve {
            family: CurveFamily::Linear,
            m: 0.02,
            b: 2.0,
        },
        footprint_noise_sd: 0.0,
    }
}

/// An engine with [`EXECUTORS_PER_NODE`] live executors on every node,
/// staggered slices, all comfortably inside RAM (cool shards), under the
/// given rate-cache mode.
#[must_use]
pub fn scale_engine(nodes: usize, mode: RateCacheMode) -> ClusterEngine {
    scale_engine_tracked(nodes, mode).0
}

/// [`scale_engine`] plus, per node, the `(app, executor)` pair of the
/// node's first slice — the handle [`storm_mutate`] kills and respawns to
/// dirty that node's shard.
#[must_use]
pub fn scale_engine_tracked(
    nodes: usize,
    mode: RateCacheMode,
) -> (ClusterEngine, Vec<(AppId, ExecutorId)>) {
    let mut eng = ClusterEngine::new(ClusterSpec::with_nodes(nodes), InterferenceModel::default());
    eng.set_rate_cache_mode(mode);
    let node_ids = eng.cluster().node_ids();
    let mut slots = Vec::with_capacity(node_ids.len());
    let mut k = 0usize;
    for (i, &node) in node_ids.iter().enumerate() {
        for j in 0..EXECUTORS_PER_NODE {
            let app = eng.submit(scale_app(&format!("app{i}_{j}"), 0.3 + 0.05 * j as f64));
            let exec = eng
                .spawn_executor(app, node, slice_gb(k), 14.0)
                .expect("spawn fits")
                .expect("input available");
            if j == 0 {
                slots.push((app, exec));
            }
            k += 1;
        }
    }
    (eng, slots)
}

/// One placement storm: kill and respawn every node's tracked executor,
/// dirtying every shard in the cluster at once — the wave shape a
/// scheduler pass leaves behind, and the input the parallel rate-refresh
/// path is built for. The next rate query (`next_completion`,
/// `cached_current_rates`) then pays a single batched refresh over the
/// whole dirty set. `k` staggers the respawned slices; the tracked
/// executor ids in `slots` are updated in place.
pub fn storm_mutate(eng: &mut ClusterEngine, slots: &mut [(AppId, ExecutorId)], k: usize) {
    let node_ids = eng.cluster().node_ids();
    for (i, slot) in slots.iter_mut().enumerate() {
        if eng.executor(slot.1).is_err() {
            // Interleaved completion churn may have retired the tracked
            // executor; adopt the node's current first slice instead
            // (shard membership order is deterministic, so every worker
            // count adopts the same one).
            if let Some(adopted) = eng.node_executors_iter(node_ids[i]).next() {
                slot.0 = eng.executor(adopted).expect("member is live").app();
                slot.1 = adopted;
            }
        }
        if eng.executor(slot.1).is_ok() {
            eng.kill_executor(slot.1).expect("storm victim is live");
        }
        slot.1 = eng
            .spawn_executor(slot.0, node_ids[i], slice_gb(k + i), 14.0)
            .expect("respawn fits")
            .expect("input available");
    }
}

/// Order-pinned digest of the engine's observable simulation state:
/// elapsed clock, live population, every cached executor rate (the
/// pairs iterate a `BTreeMap`, so the order is pinned by id) and the next
/// completion — all folded bit-exactly (FNV-1a), so two engines agree iff
/// their states are bitwise identical. This is what the
/// `SPARK_MOE_SCALE_CHECK` mode prints instead of wall-clock numbers: a
/// pure function of the sweep configuration, identical at any
/// `SPARK_MOE_THREADS`.
#[must_use]
pub fn engine_digest(eng: &mut ClusterEngine) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    fn fold(h: u64, v: u64) -> u64 {
        (h ^ v).wrapping_mul(PRIME)
    }
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    h = fold(h, eng.elapsed_secs().to_bits());
    h = fold(h, eng.live_executors() as u64);
    match eng.next_completion() {
        Some((dt, who)) => {
            h = fold(h, dt.to_bits());
            h = fold(h, who.index() as u64);
        }
        None => h = fold(h, u64::MAX),
    }
    for &(id, rate) in eng.cached_current_rates() {
        h = fold(h, id.index() as u64);
        h = fold(h, rate.to_bits());
    }
    h
}

/// One completion event, exactly as the scheduler's event loop performs
/// it: find the next finisher, advance everyone to that instant, retire
/// the finisher and respawn a fresh slice of its application in its place.
/// `k` indexes the respawn for slice staggering. Panics if the engine has
/// no live executors (the churn loops keep the population constant).
pub fn completion_step(eng: &mut ClusterEngine, k: usize) {
    let (dt, who) = eng.next_completion().expect("executors live");
    let (app, node) = {
        let e = eng.executor(who).expect("winner is live");
        (e.app(), e.node())
    };
    eng.advance(dt);
    eng.complete_executor(who).expect("winner finished");
    eng.spawn_executor(app, node, slice_gb(k), 14.0)
        .expect("respawn fits")
        .expect("input available");
}

/// Runs `events` completion events against `eng`, starting the slice
/// stagger at `k0`. Returns the next stagger index.
pub fn completion_churn(eng: &mut ClusterEngine, events: usize, k0: usize) -> usize {
    for k in k0..k0 + events {
        completion_step(eng, k);
    }
    k0 + events
}

/// Builds a queue holding `depth` events with scrambled sub-second
/// spacing — the stationary population the hold benchmark churns.
#[must_use]
pub fn build_queue(backend: QueueBackend, depth: usize) -> EventQueue<usize> {
    let mut q = EventQueue::with_capacity_and_backend(depth, backend);
    for i in 0..depth {
        let at = SimTime::from_secs(((i * 2_654_435_761) % depth) as f64 * 0.25);
        q.push(at, i);
    }
    q
}

/// Runs `steps` hold transitions against a queue built by [`build_queue`]:
/// pop the minimum, push a replacement a pseudo-random fraction of the
/// population window ahead; every 8th step additionally cancels the fresh
/// event and pushes a substitute (the scheduler's reschedule pattern).
/// The population stays at `depth` throughout — this measures steady-state
/// per-operation cost, the quantity that decides tick-loop throughput.
/// `k0` threads the pseudo-random stream across calls; returns a time
/// checksum as an optimisation barrier.
pub fn hold_churn(q: &mut EventQueue<usize>, depth: usize, steps: usize, k0: usize) -> f64 {
    let window = 0.25 * depth as f64;
    let mut checksum = 0.0;
    for k in k0..k0 + steps {
        let (at, _) = q.pop().expect("hold population never drains");
        checksum += at.as_secs();
        let jump = (k.wrapping_mul(2_654_435_761) % 4096) as f64 / 4096.0 * window;
        let id = q.push(at + SimDuration::from_secs(jump), k);
        if k.is_multiple_of(8) {
            q.cancel(id);
            q.push(at + SimDuration::from_secs(jump * 0.5), k);
        }
    }
    checksum
}

/// Total queue operations `steps` hold transitions perform (pops, pushes
/// and the periodic cancel/replace pairs) — the numerator of the hold
/// benchmark's ops/sec figure.
#[must_use]
pub fn hold_churn_ops(steps: usize) -> usize {
    2 * steps + 2 * steps.div_ceil(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_keeps_population_and_backends_agree() {
        let depth = 300;
        let steps = 1000;
        let mut checksums = Vec::new();
        for backend in [QueueBackend::Heap, QueueBackend::Calendar] {
            let mut q = build_queue(backend, depth);
            assert_eq!(q.len(), depth);
            checksums.push(hold_churn(&mut q, depth, steps, 0));
            assert_eq!(q.len(), depth, "hold keeps the population stationary");
        }
        assert_eq!(
            checksums[0].to_bits(),
            checksums[1].to_bits(),
            "backends pop the same schedule"
        );
        assert_eq!(hold_churn_ops(8), 18);
        let mut eng = scale_engine(3, RateCacheMode::Sharded);
        assert_eq!(eng.live_executors(), 3 * EXECUTORS_PER_NODE);
        let k = completion_churn(&mut eng, 10, 3 * EXECUTORS_PER_NODE);
        assert_eq!(k, 3 * EXECUTORS_PER_NODE + 10);
        assert_eq!(eng.live_executors(), 3 * EXECUTORS_PER_NODE);
    }

    #[test]
    fn storm_keeps_population_and_digest_is_thread_invariant() {
        let (mut eng, mut slots) = scale_engine_tracked(80, RateCacheMode::Sharded);
        let (mut oracle, mut oracle_slots) = scale_engine_tracked(80, RateCacheMode::Sharded);
        eng.set_refresh_workers(4);
        oracle.set_refresh_workers(1);
        let mut digests = Vec::new();
        for round in 0..3 {
            let k = 80 * EXECUTORS_PER_NODE + round * 80;
            storm_mutate(&mut eng, &mut slots, k);
            storm_mutate(&mut oracle, &mut oracle_slots, k);
            assert_eq!(eng.live_executors(), 80 * EXECUTORS_PER_NODE);
            let d = engine_digest(&mut eng);
            assert_eq!(
                d,
                engine_digest(&mut oracle),
                "digest differs from the serial oracle after storm {round}"
            );
            digests.push(d);
        }
        digests.dedup();
        assert_eq!(digests.len(), 3, "storms must actually change the state");
    }

    #[test]
    fn both_cache_modes_survive_the_churn() {
        for mode in [RateCacheMode::Sharded, RateCacheMode::WholePlacement] {
            let mut eng = scale_engine(2, mode);
            completion_churn(&mut eng, 8, 2 * EXECUTORS_PER_NODE);
            assert_eq!(eng.live_executors(), 2 * EXECUTORS_PER_NODE);
        }
    }
}
