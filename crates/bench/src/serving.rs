//! Serving firehose: shared machinery for the `fig23_serving` driver and
//! the `serving` Criterion bench.
//!
//! The firehose streams seeded synthetic feature observations (the same
//! `workloads::signatures` generator the campaigns profile with) through
//! a predictor in two shapes — the scalar per-request `select` loop and
//! the whole-matrix `select_batch` path — and measures predictions/sec
//! plus per-request latency percentiles for each.
//!
//! Determinism: the request stream is a pure function of `(catalog,
//! seed, n)`, and the batched selections are compared bit-for-bit against
//! the scalar oracle on every run. Wall-clock numbers are collected only
//! when the caller asks (`SPARK_MOE_SERVING_TIMING=1` in the driver), so
//! the default stdout and JSON record stay byte-stable across hosts and
//! thread counts.

use colocate::metrics::try_percentile;
use moe_core::features::FeatureVector;
use moe_core::{MoeError, MoePredictor, Selection};
use simkit::SimRng;
use std::fmt::Write as _;
use std::time::Instant;
use workloads::catalog::Catalog;
use workloads::signatures;

/// Batch sizes the firehose sweeps (1 isolates the batching overhead).
pub const BATCH_SIZES: [usize; 4] = [1, 16, 256, 4096];

/// Generation chunk: large enough to amortize, small enough to keep the
/// resident feature matrix tiny even for multi-million-request runs.
const GEN_CHUNK: usize = 8192;

/// A seeded stream of synthetic profiling observations over a catalog.
#[derive(Debug)]
pub struct Firehose<'a> {
    catalog: &'a Catalog,
    rng: SimRng,
    remaining: usize,
}

impl<'a> Firehose<'a> {
    /// A stream of `n` observations, a pure function of `seed`.
    #[must_use]
    pub fn new(catalog: &'a Catalog, seed: u64, n: usize) -> Self {
        Firehose {
            catalog,
            rng: SimRng::seed_from(seed),
            remaining: n,
        }
    }

    /// Draws up to `max` next observations (fewer at end of stream;
    /// empty when exhausted).
    pub fn next_chunk(&mut self, max: usize) -> Vec<FeatureVector> {
        let take = self.remaining.min(max);
        self.remaining -= take;
        let benches = self.catalog.all();
        (0..take)
            .map(|_| {
                let b = self.rng.uniform_usize(0, benches.len() - 1);
                signatures::observe_default(&benches[b], &mut self.rng)
            })
            .collect()
    }
}

/// Throughput and latency of one firehose pass (timing fields are `None`
/// when the pass ran without wall-clock measurement).
#[derive(Debug, Clone)]
pub struct ModeStats {
    /// `"scalar"` or `"batched"`.
    pub mode: &'static str,
    /// Requests per dispatch (1 for the scalar loop).
    pub batch: usize,
    /// Predictions per second over the timed inference sections.
    pub preds_per_sec: Option<f64>,
    /// Median per-request latency, microseconds.
    pub p50_us: Option<f64>,
    /// 95th-percentile per-request latency, microseconds.
    pub p95_us: Option<f64>,
    /// 99th-percentile per-request latency, microseconds.
    pub p99_us: Option<f64>,
}

fn stats_from(
    mode: &'static str,
    batch: usize,
    n: usize,
    timed_secs: f64,
    latencies_us: &[f64],
) -> ModeStats {
    let timed = !latencies_us.is_empty() && timed_secs > 0.0;
    ModeStats {
        mode,
        batch,
        preds_per_sec: timed.then(|| n as f64 / timed_secs),
        p50_us: try_percentile(latencies_us, 50.0),
        p95_us: try_percentile(latencies_us, 95.0),
        p99_us: try_percentile(latencies_us, 99.0),
    }
}

/// Runs the scalar per-request loop over the firehose, returning its
/// selections (the bitwise oracle for the batched passes) and its stats.
///
/// # Errors
///
/// Propagates selection failures.
pub fn run_scalar(
    predictor: &MoePredictor,
    catalog: &Catalog,
    seed: u64,
    n: usize,
    timing: bool,
) -> Result<(Vec<Selection>, ModeStats), MoeError> {
    let mut stream = Firehose::new(catalog, seed, n);
    let mut selections = Vec::with_capacity(n);
    let mut latencies_us = if timing {
        Vec::with_capacity(n)
    } else {
        Vec::new()
    };
    let mut timed_secs = 0.0f64;
    loop {
        let chunk = stream.next_chunk(GEN_CHUNK);
        if chunk.is_empty() {
            break;
        }
        if timing {
            for f in &chunk {
                let t0 = Instant::now();
                let sel = predictor.select(f)?;
                let dt = t0.elapsed().as_secs_f64();
                timed_secs += dt;
                latencies_us.push(dt * 1e6);
                selections.push(sel);
            }
        } else {
            for f in &chunk {
                selections.push(predictor.select(f)?);
            }
        }
    }
    let stats = stats_from("scalar", 1, n, timed_secs, &latencies_us);
    Ok((selections, stats))
}

/// Runs the batched path at one batch size, checking every selection
/// bit-for-bit against the scalar oracle. Per-request latency is the
/// whole dispatch's wall time (a request waits for its batch).
///
/// Returns the stats and whether every selection matched the oracle.
///
/// # Errors
///
/// Propagates selection failures.
pub fn run_batched(
    predictor: &MoePredictor,
    catalog: &Catalog,
    seed: u64,
    n: usize,
    batch: usize,
    timing: bool,
    oracle: &[Selection],
) -> Result<(ModeStats, bool), MoeError> {
    let mut stream = Firehose::new(catalog, seed, n);
    let mut latencies_us = if timing {
        Vec::with_capacity(n)
    } else {
        Vec::new()
    };
    let mut timed_secs = 0.0f64;
    let mut identical = true;
    let mut done = 0usize;
    // Generate in the same `GEN_CHUNK` blocks the scalar loop uses and
    // carve dispatches out of each block, so stream generation has an
    // identical allocation and cache footprint at every batch size — the
    // only variable across modes is the dispatch width under test.
    loop {
        let chunk = stream.next_chunk(GEN_CHUNK);
        if chunk.is_empty() {
            break;
        }
        for dispatch in chunk.chunks(batch.max(1)) {
            let selections = if timing {
                let t0 = Instant::now();
                let selections = predictor.select_batch(dispatch)?;
                let dt = t0.elapsed().as_secs_f64();
                timed_secs += dt;
                for _ in 0..dispatch.len() {
                    latencies_us.push(dt * 1e6);
                }
                selections
            } else {
                predictor.select_batch(dispatch)?
            };
            for (i, sel) in selections.iter().enumerate() {
                let Some(reference) = oracle.get(done + i) else {
                    identical = false;
                    continue;
                };
                if sel.expert != reference.expert
                    || sel.distance.to_bits() != reference.distance.to_bits()
                    || sel.low_confidence != reference.low_confidence
                {
                    identical = false;
                }
            }
            done += selections.len();
        }
    }
    if done != oracle.len() {
        identical = false;
    }
    let stats = stats_from("batched", batch, n, timed_secs, &latencies_us);
    Ok((stats, identical))
}

fn push_mode(out: &mut String, s: &ModeStats) {
    let num = |v: Option<f64>| crate::report::json_num(v.unwrap_or(f64::NAN));
    let _ = write!(
        out,
        "{{\"mode\":{},\"batch\":{},\"preds_per_sec\":{},\"p50_us\":{},\"p95_us\":{},\
         \"p99_us\":{}}}",
        crate::report::json_str(s.mode),
        s.batch,
        num(s.preds_per_sec),
        num(s.p50_us),
        num(s.p95_us),
        num(s.p99_us),
    );
}

/// Renders the `BENCH_serving.json` record: request count, the bitwise
/// equivalence verdict, artifact size, and one row per mode.
#[must_use]
pub fn serving_json(
    requests: usize,
    seed: u64,
    artifact_bytes: usize,
    identical: bool,
    modes: &[ModeStats],
) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"requests\":{requests},\"seed\":{seed},\"artifact_bytes\":{artifact_bytes},\
         \"batched_equals_scalar\":{identical},\"modes\":["
    );
    for (i, s) in modes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_mode(&mut out, s);
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn firehose_is_deterministic_and_sized() {
        let catalog = crate::catalog();
        let mut a = Firehose::new(catalog, 9, 10);
        let mut b = Firehose::new(catalog, 9, 10);
        let (ca, cb) = (a.next_chunk(7), b.next_chunk(7));
        assert_eq!(ca.len(), 7);
        for (x, y) in ca.iter().zip(&cb) {
            for (u, v) in x.as_slice().iter().zip(y.as_slice()) {
                assert_eq!(u.to_bits(), v.to_bits());
            }
        }
        assert_eq!(a.next_chunk(7).len(), 3);
        assert!(a.next_chunk(7).is_empty());
    }

    #[test]
    fn serving_json_is_stable_without_timing() {
        let modes = [ModeStats {
            mode: "scalar",
            batch: 1,
            preds_per_sec: None,
            p50_us: None,
            p95_us: None,
            p99_us: None,
        }];
        let json = serving_json(4, 7, 100, true, &modes);
        assert_eq!(
            json,
            "{\"requests\":4,\"seed\":7,\"artifact_bytes\":100,\
             \"batched_equals_scalar\":true,\"modes\":[{\"mode\":\"scalar\",\"batch\":1,\
             \"preds_per_sec\":null,\"p50_us\":null,\"p95_us\":null,\"p99_us\":null}]}\n"
        );
    }
}
