//! # bench-suite — regenerating every table and figure of the paper
//!
//! Each binary in `src/bin/` reproduces one table or figure of the
//! Middleware '17 evaluation and prints the same rows/series the paper
//! reports (see `DESIGN.md` §5 for the full index and `EXPERIMENTS.md` for
//! paper-vs-measured numbers):
//!
//! | binary | reproduces |
//! |---|---|
//! | `tab02_features` | Table 2 + Fig. 4b — feature importance ranking |
//! | `tab05_classifiers` | Table 5 — expert-selector accuracy per classifier |
//! | `fig03_memfuncs` | Fig. 3 — observed vs predicted curves (Sort, PageRank) |
//! | `fig04_pca` | Fig. 4a — explained variance per principal component |
//! | `fig06_overall` | Fig. 6 — STP & ANTT vs Pairwise/Quasar/Oracle, L1..L10 |
//! | `fig07_utilization` | Fig. 7 — per-node utilisation over time (Table 4 mix) |
//! | `fig08_mix_outcome` | Fig. 8 — STP & turnaround for the Table 4 mix |
//! | `fig09_unified` | Fig. 9 — unified single-model baselines |
//! | `fig10_online` | Fig. 10 — online-search baseline |
//! | `fig11_overhead` | Fig. 11 — profiling overhead per scenario |
//! | `fig12_overhead_apps` | Fig. 12 — profiling overhead per benchmark |
//! | `fig13_cpuload` | Fig. 13 — CPU-load histogram in isolation |
//! | `fig14_interference` | Fig. 14 — Spark-vs-Spark co-location slowdowns |
//! | `fig15_parsec` | Fig. 15 — PARSEC co-location slowdowns |
//! | `fig16_clusters` | Fig. 16 — benchmark clusters in PCA space |
//! | `fig17_accuracy` | Fig. 17 — predicted vs measured footprints |
//! | `fig18_curves` | Fig. 18 — predicted vs measured curves, all training apps |
//! | `fig19_chaos` | Fig. 19 (extension) — STP/ANTT vs fault intensity, self-healing MoE vs plain/Pairwise/Oracle |
//! | `fig20_scale` | Fig. 20 (extension) — simulator-core throughput vs cluster size (40 → 40k nodes) |
//! | `fig21_openloop` | Fig. 21 (extension) — open-system tail slowdown/OOMs under overload, admission-controlled vs uncontrolled |
//! | `fig22_chaos_search` | Fig. 22 (extension) — seeded chaos search over the fault × arrival × preset space with invariant battery and reproducer shrinking |
//! | `ablation_sweep` | design-choice ablations (KNN k, PCs, calibration sizes, margins, CPU guard, monitor window, cluster scaling) |
//! | `paper_headlines` | the §6.1 highlights block, measured in one run |
//! | `catalog_dump` | the 44-benchmark ground-truth catalog |
//! | `convergence_check` | the §5.2 CI stopping rule in action |
//!
//! The campaign sizes honour the `SPARK_MOE_MIXES` environment variable
//! (mixes per scenario, default 8) so CI can run quickly while a full
//! reproduction can push toward the paper's ~100 mixes. Campaigns fan out
//! across worker threads (see `simkit::par`); set `SPARK_MOE_THREADS` to
//! pin the pool — results are bit-for-bit identical for every value.

#![warn(missing_docs)]

pub mod csv;
pub mod fsutil;
pub mod mlcamp;
pub mod report;
pub mod scalekit;
pub mod serving;

use colocate::checkpoint::CheckpointConfig;
use colocate::harness::RunConfig;
use std::path::PathBuf;
use std::sync::OnceLock;
use workloads::Catalog;

/// The 44-benchmark ground-truth catalog, built once per process.
///
/// Every figure binary needs the same immutable [`Catalog::paper`]; the
/// construction involves per-benchmark latent signatures, so sharing one
/// instance keeps binaries that evaluate many scenarios from rebuilding it
/// per campaign (and lets campaign worker threads borrow it `'static`).
#[must_use]
pub fn catalog() -> &'static Catalog {
    static CATALOG: OnceLock<Catalog> = OnceLock::new();
    CATALOG.get_or_init(Catalog::paper)
}

/// Number of random mixes per scenario, from `SPARK_MOE_MIXES` (default 8).
#[must_use]
pub fn mixes_per_scenario() -> usize {
    std::env::var("SPARK_MOE_MIXES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(8)
}

/// The shared experiment configuration (paper cluster, default training).
///
/// Worker-thread count is left at `None`, deferring to the
/// `SPARK_MOE_THREADS` override and then the host's parallelism.
#[must_use]
pub fn paper_run_config() -> RunConfig {
    RunConfig::default()
}

/// The checkpoint directory from `SPARK_MOE_CHECKPOINT_DIR`, if set.
///
/// When configured, campaign binaries journal every committed per-mix
/// fold there and resume interrupted sweeps — see
/// [`colocate::checkpoint`] and the README's "Resuming an interrupted
/// sweep".
#[must_use]
pub fn checkpoint_dir() -> Option<PathBuf> {
    std::env::var_os("SPARK_MOE_CHECKPOINT_DIR").map(PathBuf::from)
}

/// A [`CheckpointConfig`] journaling campaign `name` under
/// `SPARK_MOE_CHECKPOINT_DIR`, or `None` when checkpointing is disabled.
///
/// `name` must be unique per campaign within a binary (one campaign, one
/// journal file): the fig binaries use e.g. `fig06_L3` for the Fig. 6
/// scenario-L3 sweep.
#[must_use]
pub fn checkpoint_for(name: &str) -> Option<CheckpointConfig> {
    checkpoint_dir().map(|dir| CheckpointConfig::new(dir.join(format!("{name}.journal"))))
}

/// Prints a horizontal rule sized for the standard table width.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Formats a `(min, max)` whisker pair.
#[must_use]
pub fn whisker(min_max: (f64, f64)) -> String {
    format!("[{:5.2}, {:5.2}]", min_max.0, min_max.1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_default_is_positive() {
        assert!(mixes_per_scenario() > 0);
    }

    #[test]
    fn whisker_formats() {
        assert_eq!(whisker((1.0, 2.5)), "[ 1.00,  2.50]");
    }
}
