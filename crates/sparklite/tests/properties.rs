//! Property-based tests for the Spark substrate.

use mlkit::regression::{CurveFamily, FittedCurve};
use proptest::prelude::*;
use sparklite::app::AppSpec;
use sparklite::cluster::ClusterSpec;
use sparklite::engine::ClusterEngine;
use sparklite::perf::{ExecutorDemand, InterferenceModel};

fn app(input_gb: f64, cpu: f64, mem_m: f64) -> AppSpec {
    AppSpec {
        name: "p".into(),
        input_gb,
        rate_gb_per_s: 1.0,
        cpu_util: cpu,
        memory_curve: FittedCurve {
            family: CurveFamily::Linear,
            m: mem_m,
            b: 0.5,
        },
        footprint_noise_sd: 0.0,
    }
}

proptest! {
    /// Rate multipliers are always in (0, 1]: co-location can only slow
    /// executors down, never speed them up.
    #[test]
    fn rate_multipliers_in_unit_interval(
        demands in proptest::collection::vec((0.01f64..1.0, 0.1f64..100.0), 1..10),
    ) {
        let model = InterferenceModel::default();
        let ds: Vec<ExecutorDemand> = demands
            .iter()
            .map(|&(cpu_util, actual_gb)| ExecutorDemand { cpu_util, actual_gb })
            .collect();
        for r in model.rate_multipliers(&ds, 64.0) {
            prop_assert!(r > 0.0 && r <= 1.0, "rate {r}");
        }
    }

    /// Adding a co-runner never increases anyone's rate.
    #[test]
    fn co_runners_are_monotone_slowdowns(
        base_cpu in 0.05f64..0.9,
        extra_cpu in 0.05f64..0.9,
        base_mem in 1.0f64..40.0,
        extra_mem in 1.0f64..40.0,
    ) {
        let model = InterferenceModel::default();
        let solo = model.rate_multipliers(
            &[ExecutorDemand { cpu_util: base_cpu, actual_gb: base_mem }],
            64.0,
        )[0];
        let pair = model.rate_multipliers(
            &[
                ExecutorDemand { cpu_util: base_cpu, actual_gb: base_mem },
                ExecutorDemand { cpu_util: extra_cpu, actual_gb: extra_mem },
            ],
            64.0,
        )[0];
        prop_assert!(pair <= solo + 1e-12);
    }

    /// Conservation of data: processed + unassigned + in-flight always
    /// equals the input, through arbitrary spawn/advance/complete cycles.
    #[test]
    fn data_is_conserved(
        input in 5.0f64..200.0,
        slices in proptest::collection::vec(1.0f64..50.0, 1..8),
        advance_frac in 0.1f64..2.0,
    ) {
        let mut eng = ClusterEngine::new(ClusterSpec::small(4), InterferenceModel::default());
        let a = eng.submit(app(input, 0.3, 0.1));
        let nodes = eng.cluster().node_ids();
        let mut live = Vec::new();
        for (i, &s) in slices.iter().enumerate() {
            if let Ok(Some(id)) = eng.spawn_executor(a, nodes[i % nodes.len()], s, 10.0) {
                live.push(id);
            }
        }
        // Partial progress.
        if let Some((dt, _)) = eng.next_completion() {
            eng.advance(dt * advance_frac.min(0.99));
        }
        let in_flight: f64 = live
            .iter()
            .filter_map(|&id| eng.executor(id).ok())
            .map(|e| e.slice_gb())
            .sum();
        let st = eng.app(a);
        let total = st.processed_gb() + st.unassigned_gb() + in_flight;
        prop_assert!((total - input).abs() < 1e-6, "total {total} vs input {input}");
    }

    /// Reservations are always released by completion or kill: after
    /// draining everything, every node is back to full free memory.
    #[test]
    fn memory_reservations_drain(
        inputs in proptest::collection::vec(1.0f64..40.0, 1..6),
    ) {
        let mut eng = ClusterEngine::new(ClusterSpec::small(3), InterferenceModel::default());
        let nodes = eng.cluster().node_ids();
        let mut ids = Vec::new();
        for (i, &gb) in inputs.iter().enumerate() {
            let a = eng.submit(app(gb, 0.3, 0.2));
            if let Ok(Some(id)) = eng.spawn_executor(a, nodes[i % nodes.len()], gb, 15.0) {
                ids.push(id);
            }
        }
        // Kill half, run the rest to completion.
        for (i, id) in ids.iter().enumerate() {
            if i % 2 == 0 {
                eng.kill_executor(*id).unwrap();
            }
        }
        while let Some((dt, who)) = eng.next_completion() {
            eng.advance(dt);
            eng.complete_executor(who).unwrap();
        }
        for &n in &nodes {
            prop_assert!((eng.node_free_memory(n) - 64.0).abs() < 1e-6);
        }
    }

    /// The engine's incremental rate cache is bit-identical to a
    /// from-scratch recomputation after arbitrary seeded sequences of
    /// spawn / extend / kill / fail / restore / advance — the invariant
    /// the figure regeneration identity rests on.
    #[test]
    fn cached_rates_match_from_scratch_recomputation(
        seed in 0u64..1000,
        ops in proptest::collection::vec((0u8..6, 0usize..64, 0.1f64..30.0), 1..40),
    ) {
        let mut eng = ClusterEngine::with_seed(
            ClusterSpec::small(4),
            InterferenceModel::default(),
            seed,
        );
        let mut apps: Vec<_> = (0..3)
            .map(|i| eng.submit(app(500.0, 0.2 + 0.2 * i as f64, 0.3)))
            .collect();
        // A memory hog whose executors overflow RAM, so the sequences
        // exercise hot shards (paging factors that ramp under advance)
        // and not just the cool fast path.
        apps.push(eng.submit(app(500.0, 0.3, 2.5)));
        let nodes = eng.cluster().node_ids();
        for &(op, pick, amount) in &ops {
            match op {
                0 => {
                    let a = apps[pick % apps.len()];
                    let n = nodes[pick % nodes.len()];
                    let _ = eng.spawn_executor(a, n, amount, amount.min(12.0));
                }
                1 => {
                    let ids: Vec<_> = eng.executors_iter().map(|e| e.id()).collect();
                    if !ids.is_empty() {
                        let _ = eng.extend_executor(ids[pick % ids.len()], amount, 1.0);
                    }
                }
                2 => {
                    let ids: Vec<_> = eng.executors_iter().map(|e| e.id()).collect();
                    if !ids.is_empty() {
                        let _ = eng.kill_executor(ids[pick % ids.len()]);
                    }
                }
                3 => {
                    let _ = eng.fail_node(nodes[pick % nodes.len()]);
                }
                4 => {
                    let _ = eng.restore_node(nodes[pick % nodes.len()]);
                }
                _ => eng.advance(amount * 0.1),
            }
            // After EVERY mutation the cache must agree bit-for-bit with
            // the reference implementation.
            let scratch = eng.current_rates();
            let cached = eng.cached_current_rates().to_vec();
            prop_assert_eq!(cached.len(), scratch.len());
            for (id, rate) in cached {
                let reference = scratch[&id];
                prop_assert!(
                    rate.to_bits() == reference.to_bits(),
                    "cached rate for {:?} is {}, reference {}", id, rate, reference
                );
            }
            // The tournament tree's next completion must match the
            // from-scratch (dt, id)-lexicographic scan exactly — same
            // winner, same delay bits.
            let fast = eng.next_completion();
            let slow = eng.next_completion_naive();
            match (fast, slow) {
                (Some((df, wf)), Some((ds, ws))) => {
                    prop_assert_eq!(wf, ws, "tree winner vs naive winner");
                    prop_assert!(
                        df.to_bits() == ds.to_bits(),
                        "tree delay {} vs naive delay {}", df, ds
                    );
                }
                (f, s) => prop_assert_eq!(f.map(|x| x.1), s.map(|x| x.1)),
            }
        }
    }

    /// next_completion + advance + complete always terminates a workload
    /// (no executor ever stalls at rate zero).
    #[test]
    fn workloads_always_terminate(
        napps in 1usize..5,
        input in 1.0f64..30.0,
        cpu in 0.1f64..0.95,
    ) {
        let mut eng = ClusterEngine::new(ClusterSpec::small(2), InterferenceModel::default());
        let nodes = eng.cluster().node_ids();
        for i in 0..napps {
            let a = eng.submit(app(input, cpu, 0.1));
            eng.spawn_executor(a, nodes[i % nodes.len()], input, 10.0).unwrap();
        }
        let mut steps = 0;
        while let Some((dt, who)) = eng.next_completion() {
            eng.advance(dt);
            eng.complete_executor(who).unwrap();
            steps += 1;
            prop_assert!(steps <= napps + 1, "too many completions");
        }
        prop_assert!(eng.all_finished());
    }
}
