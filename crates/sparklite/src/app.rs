//! Applications as divisible data-parallel loads.
//!
//! A Spark application's input is an RDD partitioned across executors; for
//! co-location studies what matters is (a) how much data remains to be
//! processed, (b) how fast one executor chews through its slice, (c) how
//! much CPU it demands while doing so, and (d) the ground-truth memory
//! footprint of an executor holding a slice of a given size. [`AppSpec`]
//! captures exactly that; [`AppState`] tracks progress.

use mlkit::regression::FittedCurve;
use serde::{Deserialize, Serialize};

/// Identifier of a submitted application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AppId(pub(crate) usize);

impl AppId {
    /// Index of this application in submission order.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for AppId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "app{}", self.0)
    }
}

/// Static description of an application run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppSpec {
    /// Benchmark name (e.g. "HB.Sort").
    pub name: String,
    /// Total input size in GB.
    pub input_gb: f64,
    /// Nominal processing rate of a single executor, GB/s, when running
    /// uncontended.
    pub rate_gb_per_s: f64,
    /// Average CPU utilisation of one executor as a fraction of a node's
    /// capacity (Fig. 13: mostly below 0.4).
    pub cpu_util: f64,
    /// Ground-truth memory footprint curve: executor slice GB → RAM GB.
    pub memory_curve: FittedCurve,
    /// Relative standard deviation of multiplicative noise on the *actual*
    /// footprint (profiling measurements observe the noisy value).
    pub footprint_noise_sd: f64,
}

impl AppSpec {
    /// Ground-truth footprint (GB) of an executor holding `slice_gb` of
    /// input, before measurement noise. Never negative.
    #[must_use]
    pub fn true_footprint_gb(&self, slice_gb: f64) -> f64 {
        self.memory_curve.eval(slice_gb).max(0.0)
    }

    /// Time (s) for one uncontended executor to process `gb` of input.
    ///
    /// # Panics
    ///
    /// Panics if the spec has a non-positive rate.
    #[must_use]
    pub fn uncontended_seconds(&self, gb: f64) -> f64 {
        assert!(self.rate_gb_per_s > 0.0, "rate must be positive");
        gb / self.rate_gb_per_s
    }
}

/// Lifecycle of an application inside the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AppStatus {
    /// Submitted, not all input assigned/processed yet.
    Running,
    /// Every GB of input has been processed.
    Finished,
}

/// Mutable progress state of a submitted application.
#[derive(Debug, Clone)]
pub struct AppState {
    spec: AppSpec,
    /// Input not yet assigned to any executor (GB).
    unassigned_gb: f64,
    /// Input fully processed (GB).
    processed_gb: f64,
    /// Live executors working for this app.
    live_executors: usize,
    status: AppStatus,
}

impl AppState {
    pub(crate) fn new(spec: AppSpec) -> Self {
        let unassigned = spec.input_gb;
        AppState {
            spec,
            unassigned_gb: unassigned,
            processed_gb: 0.0,
            live_executors: 0,
            status: AppStatus::Running,
        }
    }

    /// The application's static spec.
    #[must_use]
    pub fn spec(&self) -> &AppSpec {
        &self.spec
    }

    /// Input not yet assigned to an executor (GB).
    #[must_use]
    pub fn unassigned_gb(&self) -> f64 {
        self.unassigned_gb
    }

    /// Input fully processed (GB).
    #[must_use]
    pub fn processed_gb(&self) -> f64 {
        self.processed_gb
    }

    /// Number of currently live executors.
    #[must_use]
    pub fn live_executors(&self) -> usize {
        self.live_executors
    }

    /// Current status.
    #[must_use]
    pub fn status(&self) -> AppStatus {
        self.status
    }

    /// Whether the whole input has been processed.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.status == AppStatus::Finished
    }

    /// Takes up to `gb` of unassigned input for a new executor. Returns
    /// the amount actually taken (0 when nothing is left).
    pub(crate) fn take_input(&mut self, gb: f64) -> f64 {
        let taken = gb.min(self.unassigned_gb).max(0.0);
        self.unassigned_gb -= taken;
        if taken > 0.0 {
            self.live_executors += 1;
        }
        taken
    }

    /// Takes input for extending an existing executor (the live-executor
    /// count is unchanged).
    pub(crate) fn take_input_for_extension(&mut self, gb: f64) -> f64 {
        let taken = gb.min(self.unassigned_gb).max(0.0);
        self.unassigned_gb -= taken;
        taken
    }

    /// Records a killed executor: `processed_gb` of its slice counts as
    /// done, `returned_gb` goes back to the unassigned pool to be re-run
    /// (in isolation, per §2.3).
    pub(crate) fn abort_slice(&mut self, processed_gb: f64, returned_gb: f64) {
        self.processed_gb += processed_gb;
        self.unassigned_gb += returned_gb;
        self.live_executors = self.live_executors.saturating_sub(1);
        if self.processed_gb >= self.spec.input_gb - 1e-9 && self.unassigned_gb <= 1e-9 {
            self.status = AppStatus::Finished;
        }
    }

    /// Records a finished slice.
    pub(crate) fn finish_slice(&mut self, gb: f64) {
        self.processed_gb += gb;
        self.live_executors = self.live_executors.saturating_sub(1);
        // Tolerate float dust when comparing against the total input.
        if self.processed_gb >= self.spec.input_gb - 1e-9 && self.unassigned_gb <= 1e-9 {
            self.status = AppStatus::Finished;
        }
    }

    /// Records input processed outside normal executors (profiling runs
    /// contribute to the final output, §2.3).
    pub(crate) fn credit_profiled(&mut self, gb: f64) {
        let credited = gb.min(self.unassigned_gb);
        self.unassigned_gb -= credited;
        self.processed_gb += credited;
        if self.processed_gb >= self.spec.input_gb - 1e-9 && self.unassigned_gb <= 1e-9 {
            self.status = AppStatus::Finished;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlkit::regression::CurveFamily;

    fn spec() -> AppSpec {
        AppSpec {
            name: "test".into(),
            input_gb: 100.0,
            rate_gb_per_s: 2.0,
            cpu_util: 0.3,
            memory_curve: FittedCurve {
                family: CurveFamily::Linear,
                m: 0.1,
                b: 1.0,
            },
            footprint_noise_sd: 0.0,
        }
    }

    #[test]
    fn footprint_and_timing_helpers() {
        let s = spec();
        assert_eq!(s.true_footprint_gb(50.0), 6.0);
        assert_eq!(s.uncontended_seconds(10.0), 5.0);
    }

    #[test]
    fn take_and_finish_slices_drive_lifecycle() {
        let mut st = AppState::new(spec());
        assert_eq!(st.take_input(60.0), 60.0);
        assert_eq!(st.take_input(60.0), 40.0);
        assert_eq!(st.take_input(60.0), 0.0);
        assert_eq!(st.live_executors(), 2);
        st.finish_slice(60.0);
        assert!(!st.is_finished());
        st.finish_slice(40.0);
        assert!(st.is_finished());
        assert_eq!(st.processed_gb(), 100.0);
    }

    #[test]
    fn aborted_slice_can_be_retaken() {
        let mut st = AppState::new(spec());
        st.take_input(100.0);
        // Killed after processing 30 GB: the rest returns to the pool.
        st.abort_slice(30.0, 70.0);
        assert_eq!(st.unassigned_gb(), 70.0);
        assert_eq!(st.processed_gb(), 30.0);
        assert_eq!(st.live_executors(), 0);
        assert_eq!(st.take_input(100.0), 70.0);
    }

    #[test]
    fn profiling_credit_reduces_remaining_work() {
        let mut st = AppState::new(spec());
        st.credit_profiled(10.0);
        assert_eq!(st.unassigned_gb(), 90.0);
        assert_eq!(st.processed_gb(), 10.0);
        // Over-crediting is clamped.
        st.credit_profiled(1000.0);
        assert!(st.is_finished());
        assert_eq!(st.processed_gb(), 100.0);
    }

    #[test]
    fn footprint_clamped_at_zero() {
        let mut s = spec();
        s.memory_curve = FittedCurve {
            family: CurveFamily::Linear,
            m: 1.0,
            b: -100.0,
        };
        assert_eq!(s.true_footprint_gb(10.0), 0.0);
    }
}
