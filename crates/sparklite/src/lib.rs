//! # sparklite — a Spark-like execution substrate for co-location studies
//!
//! The Middleware '17 paper evaluates its memory-aware co-location scheme on
//! a 40-node cluster running Apache Spark 2.1 under YARN. This crate is the
//! simulation substrate standing in for that testbed: it models exactly the
//! aspects of Spark the scheduler interacts with, and nothing more.
//!
//! * [`cluster`] — nodes with hardware threads, RAM and swap
//!   ([`cluster::ClusterSpec::paper_cluster`] reproduces the paper's
//!   8-core/16-thread Xeon, 64 GB RAM + 16 GB swap × 40 nodes);
//! * [`app`] — applications as divisible data-parallel loads: an input of
//!   so-many GB processed by executors at a per-executor rate, with a
//!   ground-truth memory curve (footprint vs. input slice, Table 1
//!   families) and an average CPU utilisation (Fig. 13);
//! * [`executor`] — executor processes holding a data slice, a *predicted*
//!   memory reservation (what the scheduler booked) and an *actual*
//!   footprint (what the ground-truth curve says it really uses);
//! * [`perf`] — the interference model: proportional CPU-oversubscription
//!   slowdown, sub-saturation memory-bandwidth interference (Fig. 14/15
//!   shapes) and paging penalties when actual footprints overflow RAM,
//!   escalating to OOM kills beyond RAM + swap (§2.3);
//! * [`engine`] — a processor-sharing progress engine: between scheduling
//!   decisions, executors advance at rates derived from their node's
//!   contention state; the engine reports the next completion so a driver
//!   loop can interleave scheduling and progress;
//! * [`dynalloc`] — Spark's default dynamic-allocation sizing for solo runs
//!   (§4.3: "by default, we use the dynamic allocation scheme of Spark").
//!
//! The scheduling *policies* (isolated, pairwise, Quasar, the paper's MoE
//! scheme, ...) live in the `colocate` crate; sparklite only executes
//! whatever placement it is told.
//!
//! ```
//! use sparklite::app::AppSpec;
//! use sparklite::cluster::ClusterSpec;
//! use sparklite::engine::ClusterEngine;
//! use mlkit::regression::{CurveFamily, FittedCurve};
//!
//! let cluster = ClusterSpec::paper_cluster();
//! let mut engine = ClusterEngine::new(cluster, Default::default());
//! let app = engine.submit(AppSpec {
//!     name: "sort".into(),
//!     input_gb: 64.0,
//!     rate_gb_per_s: 0.5,
//!     cpu_util: 0.35,
//!     memory_curve: FittedCurve { family: CurveFamily::Exponential, m: 5.768, b: 4.479 },
//!     footprint_noise_sd: 0.0,
//! });
//! // One executor on node 0 holding the full input under a 64 GB budget.
//! let node = engine.cluster().node_ids()[0];
//! let exec = engine.spawn_executor(app, node, 64.0, 64.0)?.unwrap();
//! let (dt, done) = engine.next_completion().unwrap();
//! assert_eq!(done, exec);
//! engine.advance(dt);
//! engine.complete_executor(done)?;
//! assert!(engine.app(app).is_finished());
//! # Ok::<(), sparklite::SparkliteError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod app;
pub mod cluster;
pub mod dynalloc;
pub mod engine;
pub mod executor;
pub mod monitor;
pub mod perf;
pub mod stages;
mod tourney;

pub use app::{AppId, AppSpec};
pub use cluster::{ClusterSpec, NodeId, NodeSpec};
pub use engine::{ClusterEngine, RateCacheMode};
pub use executor::ExecutorId;

use std::fmt;

/// Errors raised by the substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum SparkliteError {
    /// Referenced an application id that does not exist.
    UnknownApp(usize),
    /// Referenced an executor id that does not exist or already finished.
    UnknownExecutor(usize),
    /// Referenced a node id that does not exist.
    UnknownNode(usize),
    /// Tried to place work on a crashed (offline) node.
    NodeOffline(usize),
    /// A reservation exceeded the node's memory.
    Resource(simkit::ResourceError),
    /// An operation was invalid in the current state (e.g. spawning an
    /// executor for a finished application).
    InvalidState(String),
}

impl fmt::Display for SparkliteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparkliteError::UnknownApp(id) => write!(f, "unknown application #{id}"),
            SparkliteError::UnknownExecutor(id) => write!(f, "unknown executor #{id}"),
            SparkliteError::UnknownNode(id) => write!(f, "unknown node #{id}"),
            SparkliteError::NodeOffline(id) => write!(f, "node #{id} is offline"),
            SparkliteError::Resource(e) => write!(f, "resource error: {e}"),
            SparkliteError::InvalidState(msg) => write!(f, "invalid state: {msg}"),
        }
    }
}

impl std::error::Error for SparkliteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SparkliteError::Resource(e) => Some(e),
            _ => None,
        }
    }
}

impl From<simkit::ResourceError> for SparkliteError {
    fn from(e: simkit::ResourceError) -> Self {
        SparkliteError::Resource(e)
    }
}
