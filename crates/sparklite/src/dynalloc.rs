//! Spark's default dynamic-allocation sizing.
//!
//! When an application runs alone (the isolated baseline, and the first
//! placement decision of every policy), Spark's dynamic allocation decides
//! how many executors — and therefore nodes — to request. The paper runs
//! one executor per node and lets dynamic allocation grow the executor set
//! with the workload (§5.1). The model here: enough executors that each
//! slice fits comfortably in a node's RAM per the app's ground-truth curve,
//! capped by the cluster size and floored at one.

use crate::app::AppSpec;
use serde::{Deserialize, Serialize};

/// Policy knobs for dynamic allocation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DynAllocConfig {
    /// Fraction of a node's RAM one executor's slice should fit into when
    /// sized by dynamic allocation (Spark defaults leave head-room for
    /// execution/storage fractions; 0.9 models `spark.memory.fraction`-ish
    /// overheads).
    pub target_mem_fraction: f64,
    /// Minimum number of executors.
    pub min_executors: usize,
    /// Preferred data slice per executor (GB): dynamic allocation grows the
    /// executor set so each one handles roughly this much input, mirroring
    /// Spark's pending-task-driven scale-out.
    pub preferred_slice_gb: f64,
}

impl Default for DynAllocConfig {
    fn default() -> Self {
        DynAllocConfig {
            target_mem_fraction: 0.9,
            min_executors: 1,
            preferred_slice_gb: 8.0,
        }
    }
}

/// Number of executors (= nodes, one executor per node) dynamic allocation
/// grants `app` on a cluster of `nodes` nodes with `ram_gb` RAM each.
///
/// Two pressures grow the executor set, and the larger wins:
/// * **parallelism** — one executor per `preferred_slice_gb` of input
///   (Spark scales out while tasks are pending);
/// * **memory** — the smallest count that lets every slice's footprint fit
///   within `target_mem_fraction × ram_gb`.
///
/// The result is capped at `nodes` and floored at `min_executors`.
///
/// # Panics
///
/// Panics if `nodes` is zero.
#[must_use]
pub fn executors_for(app: &AppSpec, nodes: usize, ram_gb: f64, config: DynAllocConfig) -> usize {
    assert!(nodes > 0, "cluster must have nodes");
    let parallel = (app.input_gb / config.preferred_slice_gb.max(1e-9)).ceil() as usize;
    let budget = ram_gb * config.target_mem_fraction;
    let mut by_memory = 1;
    while by_memory < nodes {
        let slice = app.input_gb / by_memory as f64;
        if app.true_footprint_gb(slice) <= budget {
            break;
        }
        by_memory += 1;
    }
    parallel
        .max(by_memory)
        .max(config.min_executors.max(1))
        .min(nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlkit::regression::{CurveFamily, FittedCurve};

    fn app(input_gb: f64, m: f64, b: f64) -> AppSpec {
        AppSpec {
            name: "t".into(),
            input_gb,
            rate_gb_per_s: 1.0,
            cpu_util: 0.3,
            memory_curve: FittedCurve {
                family: CurveFamily::Linear,
                m,
                b,
            },
            footprint_noise_sd: 0.0,
        }
    }

    #[test]
    fn small_input_gets_few_executors() {
        // 10 GB input: two 8 GB-preferred slices; memory is no constraint.
        let n = executors_for(&app(10.0, 0.5, 1.0), 40, 64.0, DynAllocConfig::default());
        assert_eq!(n, 2);
        // 300 MB: a single executor suffices.
        let n = executors_for(&app(0.3, 0.5, 1.0), 40, 64.0, DynAllocConfig::default());
        assert_eq!(n, 1);
    }

    #[test]
    fn large_input_spreads_across_nodes() {
        // 1000 GB at 0.5 GB footprint per GB: a single slice would need
        // 501 GB; each node affords 57.6 GB → ~9 executors.
        let n = executors_for(&app(1000.0, 0.5, 1.0), 40, 64.0, DynAllocConfig::default());
        assert!(n >= 9, "n = {n}");
        let slice = 1000.0 / n as f64;
        assert!(0.5 * slice + 1.0 <= 57.6 + 1e-9);
    }

    #[test]
    fn capped_at_cluster_size() {
        // Footprint so large it never fits: still capped at the cluster.
        let n = executors_for(&app(1e6, 1.0, 0.0), 40, 64.0, DynAllocConfig::default());
        assert_eq!(n, 40);
    }

    #[test]
    fn min_executors_respected() {
        let cfg = DynAllocConfig {
            min_executors: 4,
            ..Default::default()
        };
        let n = executors_for(&app(1.0, 0.1, 0.1), 40, 64.0, cfg);
        assert_eq!(n, 4);
    }

    #[test]
    fn saturating_curve_is_parallelism_bound() {
        // The exponential family's footprint is bounded by m — memory never
        // constrains it, but a 1 TB input still scales out for parallelism.
        let spec = AppSpec {
            memory_curve: FittedCurve {
                family: CurveFamily::Exponential,
                m: 5.768,
                b: 4.479,
            },
            ..app(1000.0, 0.0, 0.0)
        };
        let n = executors_for(&spec, 40, 64.0, DynAllocConfig::default());
        assert_eq!(n, 40, "1 TB / 8 GB slices saturates the 40-node cluster");
    }
}
