//! The node-level performance/interference model.
//!
//! Effective executor throughput is the uncontended rate times three
//! multiplicative factors, each in `(0, 1]`:
//!
//! 1. **CPU oversubscription** — when the sum of co-located executors' CPU
//!    demands exceeds the node, everyone runs at `capacity / demand`
//!    (proportional sharing, matching the paper's even redistribution of
//!    threads across executors, §4.3);
//! 2. **sub-saturation interference** — even below 100 % CPU, co-runners
//!    contend for memory bandwidth and LLC; the paper measures < 10 %
//!    median slowdown with one co-runner (Fig. 14) and < 30 % worst case
//!    against PARSEC (Fig. 15). Modeled as `1 / (1 + β · other_load)`;
//! 3. **paging** — when the *actual* footprints of co-located executors
//!    overflow RAM, the overflow spills to swap and every executor on the
//!    node pays `1 / (1 + γ · overflow/ram)`. Beyond RAM + swap the node
//!    cannot even page: the engine kills the youngest executor (OOM), which
//!    the runtime then re-runs in isolation (§2.3).

use serde::{Deserialize, Serialize};

/// Parameters of the interference model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterferenceModel {
    /// Sub-saturation interference coefficient β.
    pub cpu_interference_beta: f64,
    /// Paging penalty coefficient γ (per unit of overflow/ram).
    pub paging_gamma: f64,
}

impl Default for InterferenceModel {
    fn default() -> Self {
        InterferenceModel {
            // β = 0.22: one 40 %-CPU co-runner slows a task by ~8 %,
            // matching the Fig. 14 median (< 10 %).
            cpu_interference_beta: 0.22,
            // γ = 12: a 10 % RAM overflow more than halves throughput —
            // paging onto disk is catastrophic, which is the paper's
            // premise for precise memory prediction.
            paging_gamma: 12.0,
        }
    }
}

/// Demand summary of one executor for rate computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutorDemand {
    /// CPU demand as a fraction of the node.
    pub cpu_util: f64,
    /// Actual memory footprint (GB).
    pub actual_gb: f64,
}

/// The memory condition of a node under a set of actual footprints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MemoryPressure {
    /// Everything fits in RAM.
    Fits,
    /// RAM is overflowed by this many GB into swap.
    Paging(f64),
    /// RAM + swap are exhausted; an OOM kill is required.
    OutOfMemory,
}

impl InterferenceModel {
    /// Classifies the memory pressure of a node whose executors' actual
    /// footprints sum to `total_actual_gb`.
    #[must_use]
    pub fn memory_pressure(
        &self,
        total_actual_gb: f64,
        ram_gb: f64,
        swap_gb: f64,
    ) -> MemoryPressure {
        if total_actual_gb <= ram_gb {
            MemoryPressure::Fits
        } else if total_actual_gb <= ram_gb + swap_gb {
            MemoryPressure::Paging(total_actual_gb - ram_gb)
        } else {
            MemoryPressure::OutOfMemory
        }
    }

    /// Rate multipliers (one per executor, same order as `demands`) for a
    /// node with the given hardware. Multipliers are in `(0, 1]`.
    ///
    /// OOM conditions are *not* resolved here — callers should have
    /// detected [`MemoryPressure::OutOfMemory`] and killed an executor
    /// first; if not, the paging term simply saturates.
    #[must_use]
    pub fn rate_multipliers(&self, demands: &[ExecutorDemand], ram_gb: f64) -> Vec<f64> {
        let mut out = Vec::with_capacity(demands.len());
        self.rate_multipliers_into(demands, ram_gb, &mut out);
        out
    }

    /// Allocation-free form of [`InterferenceModel::rate_multipliers`]:
    /// clears `out` and appends one multiplier per demand, in order. The
    /// per-demand arithmetic is identical, so both forms produce the same
    /// bits.
    pub fn rate_multipliers_into(
        &self,
        demands: &[ExecutorDemand],
        ram_gb: f64,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        if demands.is_empty() {
            return;
        }
        let total_cpu: f64 = demands.iter().map(|d| d.cpu_util).sum();
        let total_mem: f64 = demands.iter().map(|d| d.actual_gb).sum();
        let overflow = (total_mem - ram_gb).max(0.0);
        // Exponential collapse: thrashing to disk is catastrophic, not
        // merely proportional — a 15 % RAM overflow costs ~6x, which is
        // what makes precise memory prediction worth having (§1).
        let paging_factor = (-self.paging_gamma * overflow / ram_gb.max(1e-9)).exp();

        out.extend(demands.iter().map(|d| {
            let oversub = if total_cpu > 1.0 {
                1.0 / total_cpu
            } else {
                1.0
            };
            let other = (total_cpu - d.cpu_util).max(0.0);
            let interference = 1.0 / (1.0 + self.cpu_interference_beta * other);
            oversub * interference * paging_factor
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(cpu: f64, mem: f64) -> ExecutorDemand {
        ExecutorDemand {
            cpu_util: cpu,
            actual_gb: mem,
        }
    }

    #[test]
    fn solo_executor_runs_at_full_speed() {
        let m = InterferenceModel::default();
        let rates = m.rate_multipliers(&[d(0.35, 20.0)], 64.0);
        assert_eq!(rates, vec![1.0]);
    }

    #[test]
    fn one_co_runner_costs_under_ten_percent() {
        // The Fig. 14 median: a typical (< 40 % CPU) co-runner slows the
        // target by less than 10 %.
        let m = InterferenceModel::default();
        let rates = m.rate_multipliers(&[d(0.35, 20.0), d(0.40, 20.0)], 64.0);
        assert!(rates[0] > 0.90, "rate {}", rates[0]);
        assert!(rates[0] < 1.0);
    }

    #[test]
    fn cpu_oversubscription_scales_everyone_down() {
        let m = InterferenceModel {
            cpu_interference_beta: 0.0,
            paging_gamma: 0.0,
        };
        let rates = m.rate_multipliers(&[d(0.8, 1.0), d(0.8, 1.0)], 64.0);
        assert!((rates[0] - 1.0 / 1.6).abs() < 1e-12);
        assert_eq!(rates[0], rates[1]);
    }

    #[test]
    fn paging_penalty_is_severe() {
        let m = InterferenceModel::default();
        // 10 % overflow → more than 2x slowdown.
        let fits = m.rate_multipliers(&[d(0.3, 60.0)], 64.0)[0];
        let paging = m.rate_multipliers(&[d(0.3, 70.4)], 64.0)[0];
        assert_eq!(fits, 1.0);
        assert!(paging < 0.5, "paging rate {paging}");
    }

    #[test]
    fn memory_pressure_classification() {
        let m = InterferenceModel::default();
        assert_eq!(m.memory_pressure(60.0, 64.0, 16.0), MemoryPressure::Fits);
        match m.memory_pressure(70.0, 64.0, 16.0) {
            MemoryPressure::Paging(gb) => assert!((gb - 6.0).abs() < 1e-12),
            other => panic!("expected paging, got {other:?}"),
        }
        assert_eq!(
            m.memory_pressure(90.0, 64.0, 16.0),
            MemoryPressure::OutOfMemory
        );
    }

    #[test]
    fn empty_node_yields_no_rates() {
        let m = InterferenceModel::default();
        assert!(m.rate_multipliers(&[], 64.0).is_empty());
    }

    #[test]
    fn multipliers_stay_in_unit_interval() {
        let m = InterferenceModel::default();
        let demands: Vec<ExecutorDemand> = (0..8).map(|i| d(0.4, 10.0 + i as f64)).collect();
        for r in m.rate_multipliers(&demands, 64.0) {
            assert!(r > 0.0 && r <= 1.0);
        }
    }
}
