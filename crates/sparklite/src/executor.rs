//! Executor processes: the unit of placement and progress.

use crate::app::AppId;
use crate::cluster::NodeId;
use serde::{Deserialize, Serialize};

/// Identifier of a spawned executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ExecutorId(pub(crate) usize);

impl ExecutorId {
    /// Index of this executor in spawn order.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for ExecutorId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "exec{}", self.0)
    }
}

/// A live executor: a slice of one application's input being processed on
/// one node.
#[derive(Debug, Clone)]
pub struct Executor {
    id: ExecutorId,
    app: AppId,
    node: NodeId,
    /// Size of the data slice this executor was given (GB).
    slice_gb: f64,
    /// Memory the scheduler reserved for it (predicted footprint, GB).
    reserved_gb: f64,
    /// Ground-truth footprint it actually occupies (GB).
    actual_gb: f64,
    /// CPU demand as a fraction of the node (0..=1).
    cpu_util: f64,
    /// Data still to process (GB).
    remaining_gb: f64,
    /// Startup dead work still to burn (GB-equivalents at nominal rate).
    overhead_remaining_gb: f64,
}

impl Executor {
    #[allow(clippy::too_many_arguments)] // crate-internal; mirrors the launch record's fields
    pub(crate) fn new(
        id: ExecutorId,
        app: AppId,
        node: NodeId,
        slice_gb: f64,
        reserved_gb: f64,
        actual_gb: f64,
        cpu_util: f64,
        overhead_gb: f64,
    ) -> Self {
        Executor {
            id,
            app,
            node,
            slice_gb,
            reserved_gb,
            actual_gb,
            cpu_util,
            remaining_gb: slice_gb,
            overhead_remaining_gb: overhead_gb,
        }
    }

    /// This executor's id.
    #[must_use]
    pub fn id(&self) -> ExecutorId {
        self.id
    }

    /// The owning application.
    #[must_use]
    pub fn app(&self) -> AppId {
        self.app
    }

    /// The node it runs on.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Size of the assigned slice (GB).
    #[must_use]
    pub fn slice_gb(&self) -> f64 {
        self.slice_gb
    }

    /// Memory reserved by the scheduler (GB).
    #[must_use]
    pub fn reserved_gb(&self) -> f64 {
        self.reserved_gb
    }

    /// Ground-truth footprint at full occupancy (GB).
    #[must_use]
    pub fn actual_gb(&self) -> f64 {
        self.actual_gb
    }

    /// Memory the executor occupies *right now* (GB): Spark executors fill
    /// their heap as they cache RDD partitions, so usage ramps from a base
    /// working set toward the full footprint with processing progress.
    /// This is why real out-of-memory conditions strike mid-run rather
    /// than at launch.
    #[must_use]
    pub fn current_actual_gb(&self) -> f64 {
        const RAMP_BASE: f64 = 0.25;
        self.actual_gb * (RAMP_BASE + (1.0 - RAMP_BASE) * self.progress())
    }

    /// CPU demand (fraction of a node).
    #[must_use]
    pub fn cpu_util(&self) -> f64 {
        self.cpu_util
    }

    /// Data still to process (GB), excluding startup dead work.
    #[must_use]
    pub fn remaining_gb(&self) -> f64 {
        self.remaining_gb
    }

    /// Total work (data + startup overhead) still to process (GB).
    #[must_use]
    pub fn remaining_work_gb(&self) -> f64 {
        self.remaining_gb + self.overhead_remaining_gb
    }

    /// Fraction of the slice already processed, in `[0, 1]`.
    #[must_use]
    pub fn progress(&self) -> f64 {
        if self.slice_gb == 0.0 {
            1.0
        } else {
            1.0 - self.remaining_gb / self.slice_gb
        }
    }

    pub(crate) fn extend(&mut self, extra_gb: f64, extra_reserve_gb: f64, new_actual_gb: f64) {
        self.slice_gb += extra_gb;
        self.remaining_gb += extra_gb;
        self.reserved_gb += extra_reserve_gb;
        self.actual_gb = new_actual_gb;
    }

    pub(crate) fn advance(&mut self, processed_gb: f64) {
        // Startup dead work burns first, then real data.
        let from_overhead = processed_gb.min(self.overhead_remaining_gb);
        self.overhead_remaining_gb -= from_overhead;
        self.remaining_gb = (self.remaining_gb - (processed_gb - from_overhead)).max(0.0);
    }

    /// Whether the slice (and startup) is fully processed.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.remaining_gb + self.overhead_remaining_gb <= 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exec() -> Executor {
        Executor::new(ExecutorId(0), AppId(1), NodeId(2), 10.0, 4.0, 4.5, 0.3, 0.0)
    }

    #[test]
    fn accessors() {
        let e = exec();
        assert_eq!(e.id().index(), 0);
        assert_eq!(e.app().index(), 1);
        assert_eq!(e.node().index(), 2);
        assert_eq!(e.slice_gb(), 10.0);
        assert_eq!(e.reserved_gb(), 4.0);
        assert_eq!(e.actual_gb(), 4.5);
        assert_eq!(e.cpu_util(), 0.3);
        assert_eq!(e.id().to_string(), "exec0");
    }

    #[test]
    fn progress_tracks_advancement() {
        let mut e = exec();
        assert_eq!(e.progress(), 0.0);
        e.advance(2.5);
        assert_eq!(e.remaining_gb(), 7.5);
        assert_eq!(e.progress(), 0.25);
        assert!(!e.is_done());
        e.advance(100.0);
        assert!(e.is_done());
        assert_eq!(e.progress(), 1.0);
    }

    #[test]
    fn memory_ramps_with_progress() {
        let mut e = exec();
        let at_start = e.current_actual_gb();
        assert!(at_start < e.actual_gb());
        assert!((at_start - 4.5 * 0.25).abs() < 1e-12);
        e.advance(10.0);
        assert!((e.current_actual_gb() - e.actual_gb()).abs() < 1e-12);
    }

    #[test]
    fn zero_slice_is_trivially_done() {
        let e = Executor::new(ExecutorId(0), AppId(0), NodeId(0), 0.0, 0.0, 0.0, 0.1, 0.0);
        assert!(e.is_done());
        assert_eq!(e.progress(), 1.0);
    }
}
