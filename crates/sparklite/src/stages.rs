//! Stage DAGs: Spark applications as graphs of dependent stages.
//!
//! A Spark job compiles to a DAG of *stages* separated by shuffle
//! boundaries; each stage has its own data volume, CPU profile and memory
//! behaviour. The co-location experiments treat applications as single
//! divisible loads (the paper's §2.2 scope: footprint as a function of
//! input size), but the substrate supports the full structure so that
//! §3.4-style phase modeling has something real to attach to:
//!
//! * [`StageSpec`] — one stage's data volume, rate, CPU and memory curve;
//! * [`StagedApp`] — a DAG of stages with dependency edges;
//! * [`StagedApp::topological_order`] / [`StagedApp::ready_after`] — the
//!   scheduling queries a stage-aware driver needs;
//! * [`run_staged_isolated`] — executes the DAG on a [`ClusterEngine`]
//!   respecting dependencies (used as a reference executor in tests and
//!   by the staged-application example).

use crate::app::AppSpec;
use crate::cluster::NodeId;
use crate::engine::ClusterEngine;
use crate::SparkliteError;
use mlkit::regression::FittedCurve;
use serde::{Deserialize, Serialize};

/// One stage of a staged application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageSpec {
    /// Stage label ("map", "shuffle-read", ...).
    pub name: String,
    /// Data volume flowing through this stage (GB).
    pub data_gb: f64,
    /// Nominal uncontended per-executor rate for the stage (GB/s).
    pub rate_gb_per_s: f64,
    /// CPU demand while the stage runs (fraction of a node).
    pub cpu_util: f64,
    /// Memory footprint curve of a stage executor vs. its slice.
    pub memory_curve: FittedCurve,
}

impl StageSpec {
    /// The stage as a standalone [`AppSpec`] (what the engine executes).
    #[must_use]
    pub fn as_app_spec(&self, footprint_noise_sd: f64) -> AppSpec {
        AppSpec {
            name: self.name.clone(),
            input_gb: self.data_gb,
            rate_gb_per_s: self.rate_gb_per_s,
            cpu_util: self.cpu_util,
            memory_curve: self.memory_curve,
            footprint_noise_sd,
        }
    }
}

/// A DAG of stages. Edges point from prerequisites to dependents.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StagedApp {
    name: String,
    stages: Vec<StageSpec>,
    /// `deps[i]` lists the stage indices that must complete before stage
    /// `i` may start.
    deps: Vec<Vec<usize>>,
}

impl StagedApp {
    /// Builds a staged application.
    ///
    /// # Errors
    ///
    /// Returns [`SparkliteError::InvalidState`] if the shapes mismatch, an
    /// edge references a missing stage, or the graph has a cycle.
    pub fn new(
        name: impl Into<String>,
        stages: Vec<StageSpec>,
        deps: Vec<Vec<usize>>,
    ) -> Result<Self, SparkliteError> {
        if stages.is_empty() {
            return Err(SparkliteError::InvalidState(
                "a staged application needs at least one stage".into(),
            ));
        }
        if deps.len() != stages.len() {
            return Err(SparkliteError::InvalidState(format!(
                "{} stages but {} dependency lists",
                stages.len(),
                deps.len()
            )));
        }
        if deps.iter().flatten().any(|&d| d >= stages.len()) {
            return Err(SparkliteError::InvalidState(
                "dependency references a missing stage".into(),
            ));
        }
        let app = StagedApp {
            name: name.into(),
            stages,
            deps,
        };
        // Cycle check via topological sort.
        if app.topological_order().is_none() {
            return Err(SparkliteError::InvalidState(
                "stage graph contains a cycle".into(),
            ));
        }
        Ok(app)
    }

    /// A linear pipeline: stage `i+1` depends on stage `i`.
    ///
    /// # Errors
    ///
    /// Returns [`SparkliteError::InvalidState`] for an empty stage list.
    pub fn pipeline(
        name: impl Into<String>,
        stages: Vec<StageSpec>,
    ) -> Result<Self, SparkliteError> {
        let deps = (0..stages.len())
            .map(|i| if i == 0 { vec![] } else { vec![i - 1] })
            .collect();
        Self::new(name, stages, deps)
    }

    /// Application name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The stages.
    #[must_use]
    pub fn stages(&self) -> &[StageSpec] {
        &self.stages
    }

    /// Dependencies of stage `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn deps_of(&self, i: usize) -> &[usize] {
        &self.deps[i]
    }

    /// Total data volume across stages (GB).
    #[must_use]
    pub fn total_data_gb(&self) -> f64 {
        self.stages.iter().map(|s| s.data_gb).sum()
    }

    /// Kahn topological order, or `None` if the graph has a cycle.
    #[must_use]
    pub fn topological_order(&self) -> Option<Vec<usize>> {
        let n = self.stages.len();
        let mut indegree = vec![0usize; n];
        for ds in &self.deps {
            let _ = ds;
        }
        for (i, ds) in self.deps.iter().enumerate() {
            indegree[i] = ds.len();
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(next) = queue.pop() {
            order.push(next);
            for (i, ds) in self.deps.iter().enumerate() {
                if ds.contains(&next) {
                    indegree[i] -= 1;
                    if indegree[i] == 0 {
                        queue.push(i);
                    }
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Stage indices whose prerequisites are all in `done`.
    #[must_use]
    pub fn ready_after(&self, done: &[usize]) -> Vec<usize> {
        (0..self.stages.len())
            .filter(|i| !done.contains(i))
            .filter(|&i| self.deps[i].iter().all(|d| done.contains(d)))
            .collect()
    }

    /// The peak memory footprint any single stage's executor would need
    /// for a slice of `slice_gb` — what a §3.4 phase-aware budget must
    /// provision for.
    #[must_use]
    pub fn peak_stage_footprint_gb(&self, slice_gb: f64) -> f64 {
        self.stages
            .iter()
            .map(|s| s.memory_curve.eval(slice_gb).max(0.0))
            .fold(0.0, f64::max)
    }
}

/// Executes a staged application on `engine`, one dependency level at a
/// time, with every stage spread over `nodes` (isolated-style: full memory
/// reserved). Returns the simulated makespan in seconds.
///
/// This is the reference stage executor used by tests and the example; the
/// co-location policies schedule flattened applications instead (§2.2).
///
/// # Errors
///
/// Propagates engine failures and DAG validation errors.
pub fn run_staged_isolated(
    engine: &mut ClusterEngine,
    app: &StagedApp,
    nodes: &[NodeId],
    footprint_noise_sd: f64,
) -> Result<f64, SparkliteError> {
    if nodes.is_empty() {
        return Err(SparkliteError::InvalidState("no nodes supplied".into()));
    }
    let order = app
        .topological_order()
        .ok_or_else(|| SparkliteError::InvalidState("cyclic stage graph".into()))?;
    let mut elapsed = 0.0;
    let mut done: Vec<usize> = Vec::new();

    // Process dependency levels: run every ready stage to completion
    // (stages at the same level run concurrently on disjoint node sets
    // when possible, else share).
    while done.len() < order.len() {
        let ready = app.ready_after(&done);
        if ready.is_empty() {
            return Err(SparkliteError::InvalidState(
                "no ready stages but work remains".into(),
            ));
        }
        let mut stage_apps = Vec::new();
        for (slot, &stage_idx) in ready.iter().enumerate() {
            let stage = &app.stages()[stage_idx];
            let engine_app = engine.submit(stage.as_app_spec(footprint_noise_sd));
            // Round-robin stages over nodes; same-level stages sharing a
            // node book their observed footprint rather than the whole
            // machine so they can coexist.
            let node = nodes[slot % nodes.len()];
            let slice = stage.data_gb;
            let footprint = stage.memory_curve.eval(slice).max(0.0) * 1.2;
            let reserve = footprint.min(engine.node_free_memory(node));
            engine.spawn_executor(engine_app, node, slice, reserve)?;
            stage_apps.push((stage_idx, engine_app));
        }
        // Drain this level.
        while let Some((dt, who)) = engine.next_completion() {
            engine.advance(dt);
            elapsed += dt;
            engine.complete_executor(who)?;
            if stage_apps.iter().all(|&(_, a)| engine.app(a).is_finished()) {
                break;
            }
        }
        for (stage_idx, _) in stage_apps {
            done.push(stage_idx);
        }
    }
    Ok(elapsed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSpec;
    use crate::perf::InterferenceModel;
    use mlkit::regression::CurveFamily;

    fn stage(name: &str, data: f64, rate: f64) -> StageSpec {
        StageSpec {
            name: name.into(),
            data_gb: data,
            rate_gb_per_s: rate,
            cpu_util: 0.3,
            memory_curve: FittedCurve {
                family: CurveFamily::Linear,
                m: 0.2,
                b: 1.0,
            },
        }
    }

    fn diamond() -> StagedApp {
        // read -> {map_a, map_b} -> join
        StagedApp::new(
            "diamond",
            vec![
                stage("read", 10.0, 1.0),
                stage("map_a", 5.0, 1.0),
                stage("map_b", 5.0, 1.0),
                stage("join", 8.0, 1.0),
            ],
            vec![vec![], vec![0], vec![0], vec![1, 2]],
        )
        .unwrap()
    }

    #[test]
    fn topological_order_respects_dependencies() {
        let app = diamond();
        let order = app.topological_order().unwrap();
        let pos = |i: usize| order.iter().position(|&x| x == i).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(0) < pos(2));
        assert!(pos(1) < pos(3));
        assert!(pos(2) < pos(3));
    }

    #[test]
    fn cycles_are_rejected() {
        let err = StagedApp::new(
            "cyclic",
            vec![stage("a", 1.0, 1.0), stage("b", 1.0, 1.0)],
            vec![vec![1], vec![0]],
        );
        assert!(matches!(err, Err(SparkliteError::InvalidState(_))));
    }

    #[test]
    fn ready_after_unlocks_levels() {
        let app = diamond();
        assert_eq!(app.ready_after(&[]), vec![0]);
        assert_eq!(app.ready_after(&[0]), vec![1, 2]);
        assert_eq!(app.ready_after(&[0, 1]), vec![2]);
        assert_eq!(app.ready_after(&[0, 1, 2]), vec![3]);
        assert!(app.ready_after(&[0, 1, 2, 3]).is_empty());
    }

    #[test]
    fn pipeline_builder_chains_stages() {
        let app = StagedApp::pipeline(
            "etl",
            vec![
                stage("extract", 4.0, 1.0),
                stage("transform", 4.0, 1.0),
                stage("load", 2.0, 1.0),
            ],
        )
        .unwrap();
        assert_eq!(app.deps_of(0), &[] as &[usize]);
        assert_eq!(app.deps_of(1), &[0]);
        assert_eq!(app.deps_of(2), &[1]);
        assert_eq!(app.total_data_gb(), 10.0);
    }

    #[test]
    fn peak_stage_footprint_takes_the_max() {
        let mut app = diamond();
        let _ = &mut app;
        let peak = diamond().peak_stage_footprint_gb(10.0);
        assert!((peak - (0.2 * 10.0 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn staged_execution_respects_dag_and_finishes() {
        let mut engine = ClusterEngine::new(ClusterSpec::small(2), InterferenceModel::default());
        let nodes = engine.cluster().node_ids();
        let app = diamond();
        let makespan = run_staged_isolated(&mut engine, &app, &nodes, 0.0).unwrap();
        // Levels: read (10 s) + parallel maps (5 s, concurrently on two
        // nodes) + join (8 s) = 23 s at rate 1 GB/s, uncontended.
        assert!((makespan - 23.0).abs() < 1.0, "makespan {makespan}");
        assert!(engine.all_finished());
    }

    #[test]
    fn single_node_serialises_level_stages_via_sharing() {
        let mut engine = ClusterEngine::new(ClusterSpec::small(1), InterferenceModel::default());
        let nodes = engine.cluster().node_ids();
        let app = diamond();
        let makespan = run_staged_isolated(&mut engine, &app, &nodes, 0.0).unwrap();
        // The two map stages co-run on one node with mild interference:
        // longer than the 2-node run, shorter than full serialisation with
        // generous margins.
        assert!(makespan > 23.0);
        assert!(makespan < 40.0, "makespan {makespan}");
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        assert!(StagedApp::new("empty", vec![], vec![]).is_err());
        assert!(
            StagedApp::new("mismatch", vec![stage("a", 1.0, 1.0)], vec![vec![], vec![]],).is_err()
        );
        assert!(StagedApp::new("dangling", vec![stage("a", 1.0, 1.0)], vec![vec![7]],).is_err());
    }
}
