//! A tournament (winner) tree over per-node minimum completion keys.
//!
//! The sharded rate cache keeps, per node, the key of the executor that
//! finishes first on that node. The global next completion is then the
//! winner of a knockout tournament over those per-node keys: a flat binary
//! tree of `2·P` slots where updating one node's key replays only its
//! `log₂ P` matches, so placement mutations that touch a handful of nodes
//! maintain the global minimum in O(dirty · log P) instead of O(E).
//!
//! # Key semantics and the oracle-pinning discipline
//!
//! The naive oracle ([`crate::engine::ClusterEngine::next_completion_naive`])
//! compares *fresh* `(dt, id)` pairs, all computed at the same instant. The
//! tree must compare keys computed at *different* instants (a node's key is
//! only recomputed when a mutation dirties it; untouched nodes keep keys
//! from an earlier refresh), so keys carry the **absolute** completion time
//! `t = elapsed_at_refresh + dt`, which is invariant under the passage of
//! time for a node whose rates have not changed. The comparator:
//!
//! 1. compare `t` — strictly different absolute finish times order the
//!    same way fresh `dt`s would (both are the same quantity shifted by
//!    the current elapsed time);
//! 2. on a `t` tie with **bit-equal** `elapsed`, compare `(dt, id)` —
//!    exactly the oracle's comparison, because keys refreshed at the same
//!    instant are directly comparable (`fl(e + dt)` is monotone in `dt`,
//!    so equal sums with equal `e` can only come from dts the oracle
//!    would also have had to tie-break by id, or from float absorption
//!    that the raw `dt` comparison resolves exactly);
//! 3. on a `t` tie across *different* refresh instants, compare `id`.
//!    Case 3 is reachable only when two executors on different nodes,
//!    refreshed at different times, finish within one ulp of each other —
//!    coincidences the simulations' engineered ties never produce (ties
//!    come from symmetric placements, which refresh both nodes at the
//!    same instant and land in case 2).
//!
//! Winner identity is the only thing the tree decides; the returned `dt`
//! is always recomputed fresh from the winner's live state, so it is
//! bit-identical to the oracle's whenever the winner matches.

use crate::executor::ExecutorId;

/// One node's minimum-completion key, computed at that node's last
/// rate-cache refresh.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct ShardKey {
    /// Absolute completion time: `elapsed + dt`, both as of the refresh.
    pub t: f64,
    /// Engine elapsed time at the refresh that produced this key.
    pub elapsed: f64,
    /// Completion delay at the refresh: `remaining / max(rate, 1e-12)`.
    pub dt: f64,
    /// The finishing executor (the node's `(dt, id)`-lexicographic min).
    pub id: ExecutorId,
}

impl ShardKey {
    /// Strict "finishes before" order; see the module docs for why this
    /// matches the fresh-`(dt, id)` oracle comparison.
    fn beats(&self, other: &ShardKey) -> bool {
        if self.t != other.t {
            return self.t < other.t;
        }
        if self.elapsed.to_bits() == other.elapsed.to_bits() {
            (self.dt, self.id) < (other.dt, other.id)
        } else {
            self.id < other.id
        }
    }
}

/// A flat winner tree over `count` slots holding optional [`ShardKey`]s.
///
/// Slot `i`'s leaf lives at `base + i`; internal node `k` holds the winner
/// of its two children (`None` loses to everything). `nodes[1]` is the
/// champion.
#[derive(Debug)]
pub(crate) struct TourneyTree {
    /// Leaf base: the smallest power of two ≥ `count` (≥ 1).
    base: usize,
    /// `2·base` slots; index 0 unused.
    nodes: Vec<Option<(ShardKey, usize)>>,
    /// Reusable ancestor frontier for [`TourneyTree::update_bulk`].
    frontier: Vec<usize>,
}

impl TourneyTree {
    /// An empty tree with `count` slots, all vacant.
    pub fn new(count: usize) -> Self {
        let base = count.max(1).next_power_of_two();
        TourneyTree {
            base,
            nodes: vec![None; 2 * base],
            frontier: Vec::new(),
        }
    }

    /// Sets slot `slot`'s key (or vacates it with `None`) and replays its
    /// `log₂ base` matches up to the root.
    pub fn update(&mut self, slot: usize, key: Option<ShardKey>) {
        debug_assert!(
            slot < self.base,
            "slot {slot} outside tree of {}",
            self.base
        );
        let mut i = self.base + slot;
        self.nodes[i] = key.map(|k| (k, slot));
        while i > 1 {
            i /= 2;
            self.nodes[i] = Self::winner_of(self.nodes[2 * i], self.nodes[2 * i + 1]);
        }
    }

    /// Applies a batch of slot updates with one bottom-up repair pass.
    ///
    /// Equivalent to calling [`TourneyTree::update`] once per entry (in
    /// any order — later entries win on duplicate slots, matching the
    /// sequential semantics when the batch is slot-sorted, as the rate
    /// cache's dirty sets are by construction): all changed leaves are
    /// written first, then each ancestor level is repaired once over a
    /// sorted, deduplicated frontier. `winner_of` is a pure function of
    /// its children, so repairing level by level reaches exactly the
    /// fixed point the per-update match replays reach, while an update
    /// batch of `k` shards pays `O(k log(base/k) + base·[k large])`
    /// shared-ancestor work instead of `k · log₂ base` independent
    /// replays.
    pub fn update_bulk(&mut self, updates: &[(usize, Option<ShardKey>)]) {
        if updates.is_empty() {
            return;
        }
        let mut frontier = std::mem::take(&mut self.frontier);
        frontier.clear();
        for &(slot, key) in updates {
            debug_assert!(
                slot < self.base,
                "slot {slot} outside tree of {}",
                self.base
            );
            self.nodes[self.base + slot] = key.map(|k| (k, slot));
            let parent = (self.base + slot) / 2;
            if parent >= 1 {
                frontier.push(parent);
            }
        }
        while !frontier.is_empty() {
            frontier.sort_unstable();
            frontier.dedup();
            for &i in &frontier {
                self.nodes[i] = Self::winner_of(self.nodes[2 * i], self.nodes[2 * i + 1]);
            }
            if frontier[0] <= 1 {
                break;
            }
            for i in &mut frontier {
                *i /= 2;
            }
        }
        frontier.clear();
        self.frontier = frontier;
    }

    /// The champion: the winning key and its slot, if any slot is filled.
    pub fn winner(&self) -> Option<(ShardKey, usize)> {
        self.nodes[1]
    }

    fn winner_of(
        a: Option<(ShardKey, usize)>,
        b: Option<(ShardKey, usize)>,
    ) -> Option<(ShardKey, usize)> {
        match (a, b) {
            (Some(x), Some(y)) => {
                // Keys carry unique executor ids, so `beats` is a strict
                // total order here — ties cannot occur.
                if x.0.beats(&y.0) {
                    Some(x)
                } else {
                    Some(y)
                }
            }
            (Some(x), None) => Some(x),
            (None, y) => y,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(t: f64, elapsed: f64, dt: f64, id: usize) -> ShardKey {
        ShardKey {
            t,
            elapsed,
            dt,
            id: ExecutorId(id),
        }
    }

    #[test]
    fn empty_tree_has_no_winner() {
        let tree = TourneyTree::new(7);
        assert_eq!(tree.winner(), None);
    }

    #[test]
    fn winner_is_global_min_and_updates_replay_matches() {
        let mut tree = TourneyTree::new(5);
        tree.update(0, Some(key(30.0, 0.0, 30.0, 0)));
        tree.update(3, Some(key(10.0, 0.0, 10.0, 3)));
        tree.update(4, Some(key(20.0, 0.0, 20.0, 4)));
        assert_eq!(
            tree.winner().map(|(k, s)| (k.id, s)),
            Some((ExecutorId(3), 3))
        );
        // The winner leaving promotes the runner-up.
        tree.update(3, None);
        assert_eq!(
            tree.winner().map(|(k, s)| (k.id, s)),
            Some((ExecutorId(4), 4))
        );
        // A later, better key takes over.
        tree.update(1, Some(key(5.0, 2.0, 3.0, 9)));
        assert_eq!(tree.winner().map(|(_, s)| s), Some(1));
        // Vacating everything empties the tournament.
        tree.update(0, None);
        tree.update(1, None);
        tree.update(4, None);
        assert_eq!(tree.winner(), None);
    }

    #[test]
    fn t_tie_same_refresh_instant_falls_back_to_dt_then_id() {
        // Same elapsed bits: the (dt, id) comparison is the oracle's own.
        // Float absorption can make e + dt collapse distinct dts to the
        // same t; the raw dt comparison must still order them.
        let big = 1e12;
        let (d1, d2) = (1.0, 1.0 + 1e-6);
        let t1 = big + d1;
        let t2 = big + d2;
        assert_eq!(t1, t2, "absorption collapses the sums");
        let mut tree = TourneyTree::new(2);
        tree.update(0, Some(key(t2, big, d2, 0)));
        tree.update(1, Some(key(t1, big, d1, 1)));
        assert_eq!(
            tree.winner().map(|(k, _)| k.id),
            Some(ExecutorId(1)),
            "smaller dt wins despite equal t and smaller opposing id"
        );
        // Exactly equal dt too: lowest id wins, as in the oracle.
        tree.update(1, Some(key(t1, big, d2, 1)));
        assert_eq!(tree.winner().map(|(k, _)| k.id), Some(ExecutorId(0)));
    }

    #[test]
    fn t_tie_across_refresh_instants_breaks_by_id() {
        let mut tree = TourneyTree::new(2);
        tree.update(0, Some(key(50.0, 10.0, 40.0, 7)));
        tree.update(1, Some(key(50.0, 20.0, 30.0, 3)));
        assert_eq!(tree.winner().map(|(k, _)| k.id), Some(ExecutorId(3)));
    }

    #[test]
    fn update_bulk_matches_sequential_updates() {
        // A deterministic LCG drives batches of random updates/vacates
        // over a non-power-of-two slot count; after every batch the bulk
        // tree must agree with a twin maintained by per-slot updates.
        let mut seq = TourneyTree::new(13);
        let mut bulk = TourneyTree::new(13);
        let mut state = 0x2545_f491_4f6c_dd1d_u64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for round in 0..200 {
            let batch_len = (rng() % 13 + 1) as usize;
            let mut batch = Vec::new();
            for _ in 0..batch_len {
                let slot = (rng() % 13) as usize;
                let key = if rng() % 4 == 0 {
                    None
                } else {
                    let t = (rng() % 1000) as f64 / 8.0;
                    let e = (rng() % 100) as f64;
                    Some(super::ShardKey {
                        t: e + t,
                        elapsed: e,
                        dt: t,
                        id: ExecutorId((rng() % 64) as usize),
                    })
                };
                batch.push((slot, key));
            }
            // Sorted by slot, as the rate cache's drained dirty sets are.
            batch.sort_by_key(|&(slot, _)| slot);
            batch.dedup_by_key(|&mut (slot, _)| slot);
            for &(slot, key) in &batch {
                seq.update(slot, key);
            }
            bulk.update_bulk(&batch);
            assert_eq!(
                seq.winner().map(|(k, s)| (k.t.to_bits(), k.id, s)),
                bulk.winner().map(|(k, s)| (k.t.to_bits(), k.id, s)),
                "round {round}"
            );
            for (i, (a, b)) in seq.nodes.iter().zip(bulk.nodes.iter()).enumerate() {
                assert_eq!(
                    a.map(|(k, s)| (k.t.to_bits(), k.id, s)),
                    b.map(|(k, s)| (k.t.to_bits(), k.id, s)),
                    "round {round}, node {i}"
                );
            }
        }
    }

    #[test]
    fn update_bulk_on_single_slot_and_empty_batch() {
        let mut tree = TourneyTree::new(1);
        tree.update_bulk(&[]);
        assert_eq!(tree.winner(), None);
        tree.update_bulk(&[(0, Some(key(2.0, 0.0, 2.0, 4)))]);
        assert_eq!(tree.winner().map(|(k, _)| k.id), Some(ExecutorId(4)));
        tree.update_bulk(&[(0, None)]);
        assert_eq!(tree.winner(), None);
    }

    #[test]
    fn single_slot_tree_works() {
        let mut tree = TourneyTree::new(1);
        tree.update(0, Some(key(1.0, 0.0, 1.0, 0)));
        assert_eq!(tree.winner().map(|(_, s)| s), Some(0));
        tree.update(0, None);
        assert_eq!(tree.winner(), None);
    }
}
