//! The resource-monitor daemon (§4.2).
//!
//! Each computing node periodically reports its memory usage and CPU load;
//! the monitor keeps the average over a sliding window (the paper uses
//! five minutes) read from "/proc". Schedulers consume the *windowed*
//! view, which smooths execution-phase changes and load spikes — and lags
//! reality, which is exactly the trade-off the window-size ablation
//! explores.
//!
//! Daemons can also go silent (crash, network partition, hung `/proc`
//! read): [`ResourceMonitor::drop_reports`] silences a node for a span,
//! after which its window drains and [`ResourceMonitor::is_stale`] turns
//! true. A stale window means the node's state is **unknown** — consumers
//! must not read the zeroed means as "idle".

use crate::cluster::NodeId;
use crate::engine::ClusterEngine;
use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::collections::VecDeque;

/// Configuration of the monitoring daemon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// Width of the sliding window, seconds (paper: 300 s).
    pub window_secs: f64,
    /// Reporting period of the per-node daemons, seconds.
    pub report_period_secs: f64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            window_secs: 300.0,
            report_period_secs: 30.0,
        }
    }
}

/// One report from a node daemon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Report {
    at_secs: f64,
    cpu_load: f64,
    used_memory_gb: f64,
}

/// A sliding-window view of one node.
///
/// Both windowed means are memoized behind a dirty flag: schedulers query
/// `windowed_cpu`/`windowed_used_memory` for every node on every placement
/// decision, but the window contents only change on (throttled)
/// observations. The cached values are recomputed with the same
/// front-to-back summation a direct scan performs, so memoization never
/// changes a single output bit.
#[derive(Debug, Clone, Default)]
struct NodeWindow {
    reports: VecDeque<Report>,
    cached_cpu: Cell<f64>,
    cached_mem: Cell<f64>,
    dirty: Cell<bool>,
}

impl NodeWindow {
    fn push(&mut self, report: Report, window_secs: f64) {
        self.reports.push_back(report);
        self.dirty.set(true);
        self.evict(report.at_secs, window_secs);
    }

    /// Drops reports older than the window measured from `now_secs`. Runs
    /// on every observation — including ones where the node's daemon is
    /// silent — so a dropped-out node's window drains to *empty* (stale)
    /// instead of freezing its last pre-dropout contents.
    fn evict(&mut self, now_secs: f64, window_secs: f64) {
        while let Some(front) = self.reports.front() {
            if now_secs - front.at_secs > window_secs {
                self.reports.pop_front();
                self.dirty.set(true);
            } else {
                break;
            }
        }
    }

    /// Recomputes both cached means in one front-to-back pass. Per field,
    /// the additions happen in exactly the order
    /// `reports.iter().map(..).sum::<f64>()` performs them (left fold from
    /// `0.0`), which pins the float summation order the bit-identity
    /// guarantee depends on.
    fn refresh(&self) {
        if !self.dirty.get() {
            return;
        }
        if self.reports.is_empty() {
            self.cached_cpu.set(0.0);
            self.cached_mem.set(0.0);
        } else {
            let mut cpu = 0.0_f64;
            let mut mem = 0.0_f64;
            for r in &self.reports {
                cpu += r.cpu_load;
                mem += r.used_memory_gb;
            }
            let len = self.reports.len() as f64;
            self.cached_cpu.set(cpu / len);
            self.cached_mem.set(mem / len);
        }
        self.dirty.set(false);
    }

    fn mean_cpu(&self) -> f64 {
        self.refresh();
        self.cached_cpu.get()
    }

    fn mean_used_memory(&self) -> f64 {
        self.refresh();
        self.cached_mem.get()
    }

    /// Uncached reference computation, kept verbatim from the
    /// pre-memoization implementation as the oracle for property tests.
    #[cfg(test)]
    fn naive_means(&self) -> (f64, f64) {
        if self.reports.is_empty() {
            return (0.0, 0.0);
        }
        let cpu = self.reports.iter().map(|r| r.cpu_load).sum::<f64>() / self.reports.len() as f64;
        let mem =
            self.reports.iter().map(|r| r.used_memory_gb).sum::<f64>() / self.reports.len() as f64;
        (cpu, mem)
    }
}

/// The cluster-wide resource monitor.
///
/// # Examples
///
/// ```
/// use sparklite::cluster::ClusterSpec;
/// use sparklite::engine::ClusterEngine;
/// use sparklite::monitor::{MonitorConfig, ResourceMonitor};
/// use sparklite::perf::InterferenceModel;
///
/// let engine = ClusterEngine::new(ClusterSpec::small(2), InterferenceModel::default());
/// let mut monitor = ResourceMonitor::new(2, MonitorConfig::default());
/// monitor.observe(&engine, 0.0);
/// let node = engine.cluster().node_ids()[0];
/// assert_eq!(monitor.windowed_cpu(node), 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct ResourceMonitor {
    config: MonitorConfig,
    windows: Vec<NodeWindow>,
    last_observation: Option<f64>,
    /// Per-node dropout deadline: the node's daemon posts nothing until
    /// this simulated time (fault injection; 0 = reporting normally).
    dropped_until: Vec<f64>,
    /// Worker budget for storm-sized window sweeps (DESIGN.md §17).
    workers: usize,
}

/// Minimum monitored node count before [`ResourceMonitor::observe`] fans
/// its window sweep across workers. A window update is tens of
/// nanoseconds, so only very large clusters amortize thread spawn.
const PAR_OBSERVE_MIN_NODES: usize = 4096;

impl ResourceMonitor {
    /// Creates a monitor for `nodes` nodes.
    #[must_use]
    pub fn new(nodes: usize, config: MonitorConfig) -> Self {
        ResourceMonitor {
            config,
            windows: vec![NodeWindow::default(); nodes],
            last_observation: None,
            dropped_until: vec![0.0; nodes],
            workers: simkit::par::available_workers(),
        }
    }

    /// Sets the worker budget for storm-sized observation sweeps (clamped
    /// to ≥ 1; 1 pins the serial loop). Worker count never changes an
    /// output bit: each node's window update reads and writes only that
    /// node's state.
    pub fn set_observe_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> MonitorConfig {
        self.config
    }

    /// Ingests a snapshot of the cluster at simulated time `now_secs`,
    /// respecting the daemons' reporting period (snapshots arriving before
    /// the next period are ignored, as the real daemons only post
    /// periodically).
    pub fn observe(&mut self, engine: &ClusterEngine, now_secs: f64) {
        if let Some(last) = self.last_observation {
            if now_secs - last < self.config.report_period_secs {
                return;
            }
        }
        self.last_observation = Some(now_secs);
        if self.workers > 1 && self.windows.len() >= PAR_OBSERVE_MIN_NODES {
            // Storm-sized sweep: fan contiguous window chunks across
            // workers. Each node's update touches only that node's window
            // (the engine reads are shared and immutable), so the chunk
            // partition cannot change any window's bits — see DESIGN.md
            // §17. `NodeWindow`'s memoization `Cell`s bar the shared-slice
            // primitives, hence the owned-chunk sweep.
            let window_secs = self.config.window_secs;
            let dropped_until = &self.dropped_until;
            simkit::par::par_for_chunks_mut(&mut self.windows, self.workers, |i, window| {
                Self::observe_node(engine, now_secs, window_secs, dropped_until[i], i, window);
            });
            return;
        }
        let window_secs = self.config.window_secs;
        for (i, window) in self.windows.iter_mut().enumerate() {
            Self::observe_node(
                engine,
                now_secs,
                window_secs,
                self.dropped_until[i],
                i,
                window,
            );
        }
    }

    /// One node's share of an observation sweep: evict, then (daemon
    /// permitting) post a fresh report. Pure in `(engine, now, node)` —
    /// the body both the serial and the parallel sweep run verbatim.
    fn observe_node(
        engine: &ClusterEngine,
        now_secs: f64,
        window_secs: f64,
        dropped_until: f64,
        index: usize,
        window: &mut NodeWindow,
    ) {
        window.evict(now_secs, window_secs);
        if now_secs < dropped_until {
            // The daemon is silent: no fresh report, and the eviction
            // above lets the window age toward staleness.
            return;
        }
        let node = NodeId(index);
        let spec = engine.cluster().node(node).spec();
        let report = Report {
            at_secs: now_secs,
            cpu_load: engine.node_cpu_load(node),
            used_memory_gb: spec.ram_gb - engine.node_free_memory(node),
        };
        window.push(report, window_secs);
    }

    /// Silences a node's daemon until `until_secs` (fault injection: the
    /// monitor process hangs or its reports are lost). Overlapping
    /// dropouts extend to the furthest deadline.
    ///
    /// # Panics
    ///
    /// Panics on a node id outside the monitored cluster.
    pub fn drop_reports(&mut self, node: NodeId, until_secs: f64) {
        let slot = &mut self.dropped_until[node.index()];
        *slot = slot.max(until_secs);
    }

    /// Whether a node's window holds **no** reports — the scheduler must
    /// treat such a node's resource view as *unknown*, not as zero load
    /// (a silent daemon is indistinguishable from a saturated one).
    ///
    /// # Panics
    ///
    /// Panics on a node id outside the monitored cluster.
    #[must_use]
    pub fn is_stale(&self, node: NodeId) -> bool {
        self.windows[node.index()].reports.is_empty()
    }

    /// Windowed average CPU load of a node, in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics on a node id outside the monitored cluster.
    #[must_use]
    pub fn windowed_cpu(&self, node: NodeId) -> f64 {
        self.windows[node.index()].mean_cpu()
    }

    /// Windowed average used memory of a node, GB.
    ///
    /// # Panics
    ///
    /// Panics on a node id outside the monitored cluster.
    #[must_use]
    pub fn windowed_used_memory(&self, node: NodeId) -> f64 {
        self.windows[node.index()].mean_used_memory()
    }

    /// Number of reports currently inside a node's window.
    ///
    /// # Panics
    ///
    /// Panics on a node id outside the monitored cluster.
    #[must_use]
    pub fn reports_in_window(&self, node: NodeId) -> usize {
        self.windows[node.index()].reports.len()
    }
}

#[cfg(test)]
impl NodeId {
    /// Test-only constructor.
    #[must_use]
    pub(crate) fn from_index_for_tests(i: usize) -> NodeId {
        NodeId(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::AppSpec;
    use crate::cluster::ClusterSpec;
    use crate::perf::InterferenceModel;
    use mlkit::regression::{CurveFamily, FittedCurve};

    fn engine_with_load() -> (ClusterEngine, NodeId) {
        let mut engine = ClusterEngine::new(ClusterSpec::small(1), InterferenceModel::default());
        let node = engine.cluster().node_ids()[0];
        let app = engine.submit(AppSpec {
            name: "a".into(),
            input_gb: 100.0,
            rate_gb_per_s: 0.01,
            cpu_util: 0.4,
            memory_curve: FittedCurve {
                family: CurveFamily::Linear,
                m: 0.5,
                b: 1.0,
            },
            footprint_noise_sd: 0.0,
        });
        engine.spawn_executor(app, node, 20.0, 11.0).unwrap();
        (engine, node)
    }

    #[test]
    fn windowed_values_track_load() {
        let (engine, node) = engine_with_load();
        let mut monitor = ResourceMonitor::new(1, MonitorConfig::default());
        monitor.observe(&engine, 0.0);
        assert!((monitor.windowed_cpu(node) - 0.4).abs() < 1e-12);
        assert!((monitor.windowed_used_memory(node) - 11.0).abs() < 1e-12);
    }

    #[test]
    fn reporting_period_throttles_observations() {
        let (engine, node) = engine_with_load();
        let mut monitor = ResourceMonitor::new(1, MonitorConfig::default());
        monitor.observe(&engine, 0.0);
        monitor.observe(&engine, 5.0); // within the 30 s period: ignored
        assert_eq!(monitor.reports_in_window(node), 1);
        monitor.observe(&engine, 31.0);
        assert_eq!(monitor.reports_in_window(node), 2);
    }

    #[test]
    fn window_evicts_stale_reports() {
        let (engine, node) = engine_with_load();
        let mut monitor = ResourceMonitor::new(
            1,
            MonitorConfig {
                window_secs: 60.0,
                report_period_secs: 30.0,
            },
        );
        for t in [0.0, 30.0, 60.0, 90.0, 120.0] {
            monitor.observe(&engine, t);
        }
        // Window of 60 s from t = 120: reports at 60, 90, 120.
        assert_eq!(monitor.reports_in_window(node), 3);
    }

    #[test]
    fn window_lags_a_load_change() {
        let (mut engine, node) = engine_with_load();
        let mut monitor = ResourceMonitor::new(1, MonitorConfig::default());
        for t in [0.0, 30.0, 60.0] {
            monitor.observe(&engine, t);
        }
        // The executor finishes: instantaneous load drops to zero...
        engine.advance(20.0 / 0.01);
        let id = engine.node_executors(node)[0];
        engine.complete_executor(id).unwrap();
        assert_eq!(engine.node_cpu_load(node), 0.0);
        monitor.observe(&engine, 2030.0);
        // ...but the windowed view still remembers recent activity only if
        // reports are within the window; at t=2030 everything is stale
        // except the new zero-load report.
        assert!(monitor.windowed_cpu(node) < 0.1);
    }

    #[test]
    fn parallel_observe_sweep_matches_serial_bitwise() {
        // A cluster past PAR_OBSERVE_MIN_NODES takes the chunked sweep;
        // a serial-pinned twin must agree on every window, bit for bit —
        // including dropped-out daemons and stale windows.
        let nodes = PAR_OBSERVE_MIN_NODES + 100;
        let mut engine =
            ClusterEngine::new(ClusterSpec::with_nodes(nodes), InterferenceModel::default());
        let app = engine.submit(AppSpec {
            name: "a".into(),
            input_gb: 1e9,
            rate_gb_per_s: 0.01,
            cpu_util: 0.4,
            memory_curve: FittedCurve {
                family: CurveFamily::Linear,
                m: 0.5,
                b: 1.0,
            },
            footprint_noise_sd: 0.0,
        });
        let ids = engine.cluster().node_ids();
        for k in 0..400 {
            let node = ids[(k * 131) % nodes];
            engine.spawn_executor(app, node, 20.0, 11.0).unwrap();
        }
        let mut par = ResourceMonitor::new(nodes, MonitorConfig::default());
        let mut ser = par.clone();
        par.set_observe_workers(4);
        ser.set_observe_workers(1);
        for m in [par.workers, ser.workers] {
            assert!(m >= 1);
        }
        for i in (0..nodes).step_by(7) {
            par.drop_reports(NodeId(i), 45.0);
            ser.drop_reports(NodeId(i), 45.0);
        }
        for t in [0.0, 30.0, 60.0, 90.0] {
            par.observe(&engine, t);
            ser.observe(&engine, t);
        }
        for &node in &ids {
            assert_eq!(par.is_stale(node), ser.is_stale(node), "{node:?}");
            assert_eq!(
                par.windowed_cpu(node).to_bits(),
                ser.windowed_cpu(node).to_bits(),
                "{node:?}"
            );
            assert_eq!(
                par.windowed_used_memory(node).to_bits(),
                ser.windowed_used_memory(node).to_bits(),
                "{node:?}"
            );
            assert_eq!(
                par.reports_in_window(node),
                ser.reports_in_window(node),
                "{node:?}"
            );
        }
    }

    #[test]
    fn empty_monitor_reports_zero() {
        let monitor = ResourceMonitor::new(2, MonitorConfig::default());
        assert_eq!(monitor.windowed_cpu(NodeId::from_index_for_tests(0)), 0.0);
    }

    #[test]
    fn empty_window_is_stale_and_reads_zero() {
        // Edge case: no reports at all. The numeric views read zero (the
        // legacy behaviour callers may rely on) but `is_stale` flags the
        // window so schedulers can refuse to trust the zeros.
        let monitor = ResourceMonitor::new(1, MonitorConfig::default());
        let node = NodeId::from_index_for_tests(0);
        assert_eq!(monitor.reports_in_window(node), 0);
        assert!(monitor.is_stale(node));
        assert_eq!(monitor.windowed_cpu(node), 0.0);
        assert_eq!(monitor.windowed_used_memory(node), 0.0);
    }

    #[test]
    fn single_report_window_is_its_own_mean() {
        let (engine, node) = engine_with_load();
        let mut monitor = ResourceMonitor::new(1, MonitorConfig::default());
        monitor.observe(&engine, 0.0);
        assert_eq!(monitor.reports_in_window(node), 1);
        assert!(!monitor.is_stale(node));
        // A one-report mean is exactly that report.
        assert!((monitor.windowed_cpu(node) - 0.4).abs() < 1e-12);
        assert!((monitor.windowed_used_memory(node) - 11.0).abs() < 1e-12);
    }

    #[test]
    fn report_exactly_at_window_boundary_is_kept() {
        // Eviction drops reports strictly OLDER than the window: a report
        // whose age equals `window_secs` exactly stays in (the `>` in
        // `NodeWindow::evict`). Pin that boundary.
        let (engine, node) = engine_with_load();
        let mut monitor = ResourceMonitor::new(
            1,
            MonitorConfig {
                window_secs: 60.0,
                report_period_secs: 30.0,
            },
        );
        monitor.observe(&engine, 0.0);
        monitor.observe(&engine, 60.0); // age of first = window exactly
        assert_eq!(monitor.reports_in_window(node), 2);
        monitor.observe(&engine, 90.0); // age of first = 90 > 60: evicted
        assert_eq!(monitor.reports_in_window(node), 2);
    }

    #[test]
    fn dropout_drains_the_window_to_stale() {
        let (engine, node) = engine_with_load();
        let mut monitor = ResourceMonitor::new(
            1,
            MonitorConfig {
                window_secs: 60.0,
                report_period_secs: 30.0,
            },
        );
        monitor.observe(&engine, 0.0);
        assert!(!monitor.is_stale(node));
        monitor.drop_reports(node, 300.0);
        // Observations during the dropout add nothing; once the last real
        // report ages past the window the node reads as stale, not zero.
        monitor.observe(&engine, 30.0);
        assert_eq!(monitor.reports_in_window(node), 1);
        monitor.observe(&engine, 90.0);
        assert_eq!(monitor.reports_in_window(node), 0);
        assert!(monitor.is_stale(node));
        // After the dropout deadline the daemon reports again.
        monitor.observe(&engine, 301.0);
        assert_eq!(monitor.reports_in_window(node), 1);
        assert!(!monitor.is_stale(node));
    }

    proptest::proptest! {
        /// The memoized window means are bit-identical to the uncached
        /// reference computation under arbitrary report / eviction / query
        /// interleavings — queries between mutations must not perturb the
        /// cache, and every mutation must re-dirty it.
        #[test]
        fn memoized_means_match_naive(
            ops in proptest::collection::vec(
                (0u8..4, 0.0f64..1.0, 0.0f64..64.0, 0.1f64..120.0),
                1..100,
            ),
        ) {
            let window_secs = 300.0;
            let mut w = NodeWindow::default();
            let mut now = 0.0_f64;
            for &(op, cpu, mem, dt) in &ops {
                match op {
                    0 | 1 => {
                        now += dt;
                        w.push(
                            Report {
                                at_secs: now,
                                cpu_load: cpu,
                                used_memory_gb: mem,
                            },
                            window_secs,
                        );
                    }
                    2 => {
                        now += dt;
                        // A silent-daemon observation: eviction only.
                        w.evict(now, window_secs);
                    }
                    _ => {
                        // Pure query op: exercised below like every other
                        // op, but with no mutation in between — the cache
                        // must serve the same bits twice.
                        let first = (w.mean_cpu(), w.mean_used_memory());
                        let again = (w.mean_cpu(), w.mean_used_memory());
                        proptest::prop_assert_eq!(first.0.to_bits(), again.0.to_bits());
                        proptest::prop_assert_eq!(first.1.to_bits(), again.1.to_bits());
                    }
                }
                let (naive_cpu, naive_mem) = w.naive_means();
                proptest::prop_assert_eq!(w.mean_cpu().to_bits(), naive_cpu.to_bits());
                proptest::prop_assert_eq!(w.mean_used_memory().to_bits(), naive_mem.to_bits());
            }
        }
    }

    #[test]
    fn overlapping_dropouts_extend_to_the_furthest_deadline() {
        let (engine, node) = engine_with_load();
        let mut monitor = ResourceMonitor::new(1, MonitorConfig::default());
        monitor.drop_reports(node, 100.0);
        monitor.drop_reports(node, 50.0); // shorter: must not shrink
        monitor.observe(&engine, 60.0);
        assert_eq!(monitor.reports_in_window(node), 0);
        monitor.observe(&engine, 101.0);
        assert_eq!(monitor.reports_in_window(node), 1);
    }
}
