//! Cluster and node hardware models.

use serde::{Deserialize, Serialize};
use simkit::ResourcePool;

/// Identifier of a node within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Index of this node within the cluster.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Hardware description of one computing node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Hardware threads (the paper's Xeon E5-2650: 8 cores, 16 threads).
    pub hw_threads: usize,
    /// Physical RAM in GB.
    pub ram_gb: f64,
    /// Swap space in GB.
    pub swap_gb: f64,
}

impl NodeSpec {
    /// The node of the paper's testbed: 16 threads, 64 GB RAM, 16 GB swap.
    #[must_use]
    pub fn paper_node() -> Self {
        NodeSpec {
            hw_threads: 16,
            ram_gb: 64.0,
            swap_gb: 16.0,
        }
    }
}

/// Description of an entire cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of computing nodes (the driver runs on a separate
    /// coordinating node, as in §5.1).
    pub nodes: usize,
    /// Per-node hardware.
    pub node: NodeSpec,
}

impl ClusterSpec {
    /// The paper's 40-node cluster.
    #[must_use]
    pub fn paper_cluster() -> Self {
        ClusterSpec {
            nodes: 40,
            node: NodeSpec::paper_node(),
        }
    }

    /// A small cluster for fast tests.
    #[must_use]
    pub fn small(nodes: usize) -> Self {
        Self::with_nodes(nodes)
    }

    /// A cluster of `n` paper-spec nodes: the scale sweep's axis. The
    /// paper's testbed is [`ClusterSpec::paper_cluster`] (pinned at 40);
    /// this constructor is how benches and experiments vary node count
    /// without touching per-node hardware.
    #[must_use]
    pub fn with_nodes(n: usize) -> Self {
        ClusterSpec {
            nodes: n,
            node: NodeSpec::paper_node(),
        }
    }
}

/// Runtime state of one node: its memory pool (tracking *predicted*
/// reservations made by the scheduler) plus bookkeeping for actual usage.
#[derive(Debug, Clone)]
pub struct Node {
    id: NodeId,
    spec: NodeSpec,
    /// Scheduler-visible reservations (predicted footprints).
    reserved: ResourcePool,
    /// Whether the node accepts work. Crashed nodes go offline until the
    /// fault layer restores them; all nodes start online.
    online: bool,
}

impl Node {
    pub(crate) fn new(id: NodeId, spec: NodeSpec) -> Self {
        Node {
            id,
            spec,
            reserved: ResourcePool::new(format!("{id}-ram"), spec.ram_gb),
            online: true,
        }
    }

    /// The node's id.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's hardware spec.
    #[must_use]
    pub fn spec(&self) -> NodeSpec {
        self.spec
    }

    /// Memory not yet reserved by any executor (GB), by predicted
    /// footprints. This is what the resource monitor reports (§4.2).
    #[must_use]
    pub fn free_memory_gb(&self) -> f64 {
        self.reserved.available()
    }

    /// Memory reserved by executors (GB, predicted footprints).
    #[must_use]
    pub fn reserved_memory_gb(&self) -> f64 {
        self.reserved.in_use()
    }

    /// Whether the node is accepting work (not crashed).
    #[must_use]
    pub fn is_online(&self) -> bool {
        self.online
    }

    pub(crate) fn set_online(&mut self, online: bool) {
        self.online = online;
    }

    pub(crate) fn reserve(&mut self, gb: f64) -> Result<(), simkit::ResourceError> {
        self.reserved.reserve(gb)
    }

    pub(crate) fn release(&mut self, gb: f64) -> Result<(), simkit::ResourceError> {
        self.reserved.release(gb)
    }
}

/// The collection of nodes.
#[derive(Debug, Clone)]
pub struct Cluster {
    spec: ClusterSpec,
    nodes: Vec<Node>,
}

impl Cluster {
    /// Instantiates all nodes of a spec.
    #[must_use]
    pub fn new(spec: ClusterSpec) -> Self {
        let nodes = (0..spec.nodes)
            .map(|i| Node::new(NodeId(i), spec.node))
            .collect();
        Cluster { spec, nodes }
    }

    /// The cluster's spec.
    #[must_use]
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the cluster has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All node ids, in index order.
    ///
    /// Allocates; callers that only iterate should prefer
    /// [`Cluster::node_ids_iter`].
    #[must_use]
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.node_ids_iter().collect()
    }

    /// Iterates node ids in index order without allocating.
    pub fn node_ids_iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().map(Node::id)
    }

    /// Borrow a node.
    ///
    /// # Panics
    ///
    /// Panics on an id from another cluster.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    pub(crate) fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0]
    }

    /// Checks that `id` indexes this cluster.
    #[must_use]
    pub fn contains(&self, id: NodeId) -> bool {
        id.0 < self.nodes.len()
    }

    /// Iterates over nodes.
    pub fn iter(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_matches_section_5_1() {
        let spec = ClusterSpec::paper_cluster();
        assert_eq!(spec.nodes, 40);
        assert_eq!(spec.node.hw_threads, 16);
        assert_eq!(spec.node.ram_gb, 64.0);
        assert_eq!(spec.node.swap_gb, 16.0);
    }

    #[test]
    fn with_nodes_scales_count_but_not_hardware() {
        let spec = ClusterSpec::with_nodes(4000);
        assert_eq!(spec.nodes, 4000);
        assert_eq!(spec.node, NodeSpec::paper_node());
        // The paper testbed stays pinned regardless of sweep scales.
        assert_eq!(ClusterSpec::paper_cluster().nodes, 40);
    }

    #[test]
    fn cluster_instantiates_all_nodes() {
        let c = Cluster::new(ClusterSpec::small(5));
        assert_eq!(c.len(), 5);
        assert!(!c.is_empty());
        assert_eq!(c.node_ids().len(), 5);
        assert!(c.contains(NodeId(4)));
        assert!(!c.contains(NodeId(5)));
    }

    #[test]
    fn node_memory_accounting() {
        let mut c = Cluster::new(ClusterSpec::small(1));
        let id = c.node_ids()[0];
        assert_eq!(c.node(id).free_memory_gb(), 64.0);
        c.node_mut(id).reserve(24.0).unwrap();
        assert_eq!(c.node(id).free_memory_gb(), 40.0);
        assert_eq!(c.node(id).reserved_memory_gb(), 24.0);
        assert!(c.node_mut(id).reserve(41.0).is_err());
        c.node_mut(id).release(24.0).unwrap();
        assert_eq!(c.node(id).free_memory_gb(), 64.0);
    }

    #[test]
    fn nodes_start_online_and_toggle() {
        let mut c = Cluster::new(ClusterSpec::small(2));
        let id = c.node_ids()[0];
        assert!(c.node(id).is_online());
        c.node_mut(id).set_online(false);
        assert!(!c.node(id).is_online());
        assert!(c.node(c.node_ids()[1]).is_online(), "other nodes untouched");
        c.node_mut(id).set_online(true);
        assert!(c.node(id).is_online());
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(3).to_string(), "node3");
        assert_eq!(NodeId(3).index(), 3);
    }
}
