//! The processor-sharing progress engine.
//!
//! [`ClusterEngine`] owns the cluster state, the submitted applications and
//! the live executors. It does **not** own the clock or make placement
//! decisions: a driver loop (the `colocate` harness) alternates between
//!
//! 1. asking the engine for the time of the next executor completion
//!    ([`ClusterEngine::next_completion`]),
//! 2. advancing progress to that instant ([`ClusterEngine::advance`]), and
//! 3. reacting — completing executors, spawning new ones per its policy.
//!
//! Rates are recomputed lazily from the current placement, so any change
//! (spawn, completion, kill) is reflected in the very next query. This is
//! the standard piecewise-constant-rate simulation of processor sharing.
//!
//! Internally the rate cache is **sharded per node** (DESIGN.md §13): a
//! placement mutation dirties only the touched node's shard, and the next
//! query recomputes just the dirty shards — with exactly the arithmetic
//! [`ClusterEngine::current_rates`] performs per node (same member order,
//! same float operations), so caching never changes a single output bit.
//! Untouched *cool* nodes (final footprints within RAM) keep their rates
//! verbatim across `advance` calls: their paging overflow is exactly
//! `0.0` — footprints only ramp *toward* the final sum, and the
//! floating-point sum is monotone — so `exp(-0.0) = 1.0` exactly and the
//! multipliers depend only on CPU demands, which only mutations change.
//! *Hot* nodes (final footprints above RAM) are re-dirtied on every
//! `advance`, because their paging factor tracks the ramping occupancy.
//!
//! The global next completion is maintained by a tournament tree over
//! per-node minimum completion keys ([`crate::tourney`]): O(log N) per
//! dirtied node instead of an O(E) scan per query, with
//! [`ClusterEngine::next_completion_naive`] retained as the from-scratch
//! oracle the property tests pin the tree against.

use crate::app::{AppId, AppSpec, AppState};
use crate::cluster::{Cluster, ClusterSpec, NodeId};
use crate::executor::{Executor, ExecutorId};
use crate::perf::{ExecutorDemand, InterferenceModel, MemoryPressure};
use crate::tourney::{ShardKey, TourneyTree};
use crate::SparkliteError;
use simkit::SimRng;
use std::collections::BTreeMap;

/// How the engine's rate cache reacts to placement mutations.
///
/// The default sharded mode is a pure optimization: both modes produce
/// bit-identical simulations. [`RateCacheMode::WholePlacement`] reproduces
/// the pre-sharding cost model — every mutation invalidates every node —
/// and exists so the scale bench can measure before/after throughput from
/// one binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RateCacheMode {
    /// Mutations dirty only the touched node's shard; queries recompute
    /// O(dirty) shards.
    #[default]
    Sharded,
    /// Mutations dirty every shard; queries recompute the whole placement,
    /// like the pre-sharding engine did.
    WholePlacement,
}

/// One node's slice of the rate cache.
#[derive(Debug, Clone, Default)]
struct NodeShard {
    /// Ids of live executors on this node, ascending (= spawn order).
    members: Vec<ExecutorId>,
    /// Whether the members' *final* footprints overflow RAM. Hot shards
    /// must refresh after every `advance` (their paging factor ramps);
    /// cool shards provably keep their multipliers bit-for-bit. Only
    /// membership or slice mutations change this, so it stays correct on
    /// clean shards across any number of advances.
    hot: bool,
    /// The node's minimum completion key at its last refresh.
    key: Option<ShardKey>,
}

/// Incrementally maintained executor rates, sharded per node.
///
/// `exec_rates` is parallel to the engine's dense executor storage. Each
/// shard is refreshed lazily on the first query after a mutation dirties
/// it, re-running exactly the per-node arithmetic
/// [`ClusterEngine::current_rates`] performs so cached and from-scratch
/// values are bit-identical. The scratch vectors are reused across
/// refreshes, keeping the hot path allocation-free at steady state.
#[derive(Debug)]
struct RateCache {
    mode: RateCacheMode,
    /// Effective rate (GB/s) per executor, parallel to the dense storage.
    exec_rates: Vec<f64>,
    shards: Vec<NodeShard>,
    /// Indices of dirty shards awaiting refresh (each at most once).
    dirty_stack: Vec<usize>,
    /// Dirty flag per shard, guarding `dirty_stack` against duplicates.
    is_dirty: Vec<bool>,
    /// Tournament tree over the shards' completion keys.
    tree: TourneyTree,
    /// Scratch: one node's demands, in member (id) order.
    node_demands: Vec<ExecutorDemand>,
    /// Scratch: one node's rate multipliers.
    multipliers: Vec<f64>,
    /// Scratch: one node's member positions in the dense storage.
    member_pos: Vec<usize>,
    /// Scratch: id-ordered `(id, rate)` pairs for
    /// [`ClusterEngine::cached_current_rates`].
    pairs: Vec<(ExecutorId, f64)>,
    /// Worker budget for storm-sized refreshes (DESIGN.md §17). The
    /// serial loop runs whenever this is 1 *or* the dirty set is small.
    workers: usize,
    /// Scratch: the drained, ascending-sorted dirty set for a parallel
    /// refresh (canonical claim order).
    par_dirty: Vec<usize>,
    /// Scratch: per-shard refresh results, index-parallel to `par_dirty`.
    par_out: Vec<Option<ShardRefresh>>,
    /// Scratch: one refresh arena per worker, reused across refreshes.
    par_scratch: Vec<RefreshScratch>,
    /// Scratch: the slot/key batch for one bulk tournament-tree repair.
    tree_batch: Vec<(usize, Option<ShardKey>)>,
}

/// Per-worker arena for the parallel refresh: the same three per-node
/// scratch vectors the serial loop hoists, one private set per worker.
#[derive(Debug, Default)]
struct RefreshScratch {
    node_demands: Vec<ExecutorDemand>,
    multipliers: Vec<f64>,
    member_pos: Vec<usize>,
}

/// One shard's refresh outcome, computed on a worker and committed by the
/// caller in ascending shard order — the same write order as the serial
/// loop (the values are order-independent anyway: each shard owns
/// disjoint `exec_rates` slots).
#[derive(Debug)]
struct ShardRefresh {
    hot: bool,
    key: Option<ShardKey>,
    /// `(dense position, rate)` per member, in member (id) order.
    rates: Vec<(usize, f64)>,
}

/// Minimum dirty-shard count before a refresh fans out across workers.
/// Steady-state sharded simulations dirty a handful of shards per event —
/// scoped-thread spawn would dwarf the work — so only storm-sized sets
/// (whole-placement mode, post-fault invalidation waves) go parallel.
const PAR_REFRESH_MIN_SHARDS: usize = 64;

impl RateCache {
    fn new(nodes: usize) -> Self {
        RateCache {
            mode: RateCacheMode::default(),
            exec_rates: Vec::new(),
            shards: vec![NodeShard::default(); nodes],
            dirty_stack: Vec::new(),
            is_dirty: vec![false; nodes],
            tree: TourneyTree::new(nodes),
            node_demands: Vec::new(),
            multipliers: Vec::new(),
            member_pos: Vec::new(),
            pairs: Vec::new(),
            workers: simkit::par::available_workers(),
            par_dirty: Vec::new(),
            par_out: Vec::new(),
            par_scratch: Vec::new(),
            tree_batch: Vec::new(),
        }
    }

    fn mark_dirty(&mut self, node: usize) {
        if !self.is_dirty[node] {
            self.is_dirty[node] = true;
            self.dirty_stack.push(node);
        }
    }

    fn mark_all_dirty(&mut self) {
        for node in 0..self.is_dirty.len() {
            self.mark_dirty(node);
        }
    }
}

/// The cluster simulation engine.
///
/// See the crate-level documentation for an end-to-end example.
#[derive(Debug)]
pub struct ClusterEngine {
    cluster: Cluster,
    model: InterferenceModel,
    apps: Vec<AppState>,
    /// Live executors in dense, **unordered** storage: removal is an O(1)
    /// swap instead of an O(E) shift. Everything that needs id (spawn)
    /// order goes through `exec_index` or a shard's member list.
    executors: Vec<Executor>,
    /// Position of each live executor in `executors`, keyed (and iterated)
    /// in id order.
    exec_index: BTreeMap<ExecutorId, usize>,
    next_executor: usize,
    rng: SimRng,
    /// Fixed per-executor startup latency (JVM launch, container
    /// allocation, task scheduling), charged as dead work at the
    /// executor's nominal rate. Zero by default.
    startup_secs: f64,
    /// Total simulated seconds this engine has advanced — pure
    /// bookkeeping feeding the completion keys' absolute times; nothing
    /// in the progress arithmetic reads it.
    elapsed: f64,
    rate_cache: RateCache,
}

impl ClusterEngine {
    /// Creates an engine over a fresh cluster with a default RNG seed.
    #[must_use]
    pub fn new(spec: ClusterSpec, model: InterferenceModel) -> Self {
        Self::with_seed(spec, model, 0)
    }

    /// Creates an engine with an explicit seed for footprint-noise draws.
    #[must_use]
    pub fn with_seed(spec: ClusterSpec, model: InterferenceModel, seed: u64) -> Self {
        let cluster = Cluster::new(spec);
        let nodes = cluster.len();
        ClusterEngine {
            cluster,
            model,
            apps: Vec::new(),
            executors: Vec::new(),
            exec_index: BTreeMap::new(),
            next_executor: 0,
            rng: SimRng::seed_from(seed),
            startup_secs: 0.0,
            elapsed: 0.0,
            rate_cache: RateCache::new(nodes),
        }
    }

    /// Selects the rate-cache invalidation mode. Both modes simulate
    /// bit-identically; [`RateCacheMode::WholePlacement`] merely recomputes
    /// more (it reproduces the pre-sharding cost model for benchmarking).
    pub fn set_rate_cache_mode(&mut self, mode: RateCacheMode) {
        self.rate_cache.mode = mode;
        // Re-derive everything under the new regime.
        self.rate_cache.mark_all_dirty();
    }

    /// Sets the fixed startup latency charged to every newly spawned
    /// executor (seconds of dead work at the executor's nominal rate).
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite values.
    pub fn set_executor_startup_secs(&mut self, secs: f64) {
        assert!(secs.is_finite() && secs >= 0.0);
        self.startup_secs = secs;
    }

    /// The configured per-executor startup latency (s).
    #[must_use]
    pub fn executor_startup_secs(&self) -> f64 {
        self.startup_secs
    }

    /// Total simulated seconds accumulated by [`ClusterEngine::advance`].
    #[must_use]
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed
    }

    /// The cluster.
    #[must_use]
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The interference model in use.
    #[must_use]
    pub fn interference_model(&self) -> InterferenceModel {
        self.model
    }

    /// Submits an application; it starts with its whole input unassigned.
    pub fn submit(&mut self, spec: AppSpec) -> AppId {
        self.apps.push(AppState::new(spec));
        AppId(self.apps.len() - 1)
    }

    /// Borrow an application's state.
    ///
    /// # Panics
    ///
    /// Panics on an id from another engine.
    #[must_use]
    pub fn app(&self, id: AppId) -> &AppState {
        &self.apps[id.0]
    }

    /// Number of submitted applications.
    #[must_use]
    pub fn app_count(&self) -> usize {
        self.apps.len()
    }

    /// Iterates over `(id, state)` for all submitted applications.
    pub fn apps(&self) -> impl Iterator<Item = (AppId, &AppState)> {
        self.apps.iter().enumerate().map(|(i, a)| (AppId(i), a))
    }

    /// Whether every submitted application has finished.
    #[must_use]
    pub fn all_finished(&self) -> bool {
        self.apps.iter().all(AppState::is_finished)
    }

    /// Borrow a live executor.
    ///
    /// # Errors
    ///
    /// Returns [`SparkliteError::UnknownExecutor`] if it finished or never
    /// existed.
    pub fn executor(&self, id: ExecutorId) -> Result<&Executor, SparkliteError> {
        self.exec_index
            .get(&id)
            .map(|&pos| &self.executors[pos])
            .ok_or(SparkliteError::UnknownExecutor(id.0))
    }

    /// Ids of live executors on `node`, in spawn order.
    ///
    /// Allocates; hot paths that only iterate should prefer
    /// [`ClusterEngine::node_executors_iter`].
    #[must_use]
    pub fn node_executors(&self, node: NodeId) -> Vec<ExecutorId> {
        self.node_executors_iter(node).collect()
    }

    /// Iterates ids of live executors on `node`, in spawn order, without
    /// allocating. O(members), served from the node's shard.
    pub fn node_executors_iter(&self, node: NodeId) -> impl Iterator<Item = ExecutorId> + '_ {
        self.rate_cache.shards[node.index()].members.iter().copied()
    }

    /// Iterates live executors on `node`, in spawn order.
    pub fn executors_on(&self, node: NodeId) -> impl Iterator<Item = &Executor> {
        self.rate_cache.shards[node.index()]
            .members
            .iter()
            .filter_map(move |id| self.exec_index.get(id).map(|&pos| &self.executors[pos]))
    }

    /// Number of live executors on `node`.
    #[must_use]
    pub fn node_executor_count(&self, node: NodeId) -> usize {
        self.rate_cache.shards[node.index()].members.len()
    }

    /// Iterates all live executors cluster-wide, in spawn (id) order.
    pub fn executors_iter(&self) -> impl Iterator<Item = &Executor> {
        self.exec_index.values().map(|&pos| &self.executors[pos])
    }

    /// Number of live executors cluster-wide.
    #[must_use]
    pub fn live_executors(&self) -> usize {
        self.executors.len()
    }

    /// A noisy footprint measurement for a profiling run on `slice_gb` of
    /// `app`'s input — what `vmstat` would report for the executor (§4.1).
    pub fn measure_footprint(&mut self, app: AppId, slice_gb: f64) -> f64 {
        let spec = self.apps[app.0].spec();
        let noise = self.rng.relative_noise(spec.footprint_noise_sd);
        spec.true_footprint_gb(slice_gb) * noise
    }

    /// Credits profiling work toward an application's output (§2.3: "no
    /// computing cycle is wasted on profiling").
    pub fn credit_profiled(&mut self, app: AppId, gb: f64) {
        self.apps[app.0].credit_profiled(gb);
    }

    /// Marks `node`'s shard dirty under the cache's invalidation mode.
    fn invalidate(&mut self, node: NodeId) {
        match self.rate_cache.mode {
            RateCacheMode::Sharded => self.rate_cache.mark_dirty(node.index()),
            RateCacheMode::WholePlacement => self.rate_cache.mark_all_dirty(),
        }
    }

    /// Spawns an executor for `app` on `node`:
    ///
    /// * takes up to `slice_gb` of the app's unassigned input (clamped to
    ///   what remains; `Ok(None)` if nothing remains);
    /// * reserves `reserve_gb` of the node's memory (the *predicted*
    ///   footprint the scheduler budgeted);
    /// * draws the *actual* footprint from the app's ground-truth curve
    ///   plus measurement noise.
    ///
    /// The caller should check [`ClusterEngine::memory_pressure`] afterwards
    /// and resolve any [`MemoryPressure::OutOfMemory`] with
    /// [`ClusterEngine::kill_executor`].
    ///
    /// # Errors
    ///
    /// Returns [`SparkliteError::UnknownNode`] / [`SparkliteError::UnknownApp`]
    /// for bad ids, [`SparkliteError::InvalidState`] for a finished app and
    /// [`SparkliteError::Resource`] when the reservation does not fit (the
    /// app's input is left untouched in that case).
    pub fn spawn_executor(
        &mut self,
        app: AppId,
        node: NodeId,
        slice_gb: f64,
        reserve_gb: f64,
    ) -> Result<Option<ExecutorId>, SparkliteError> {
        if !self.cluster.contains(node) {
            return Err(SparkliteError::UnknownNode(node.index()));
        }
        if !self.cluster.node(node).is_online() {
            return Err(SparkliteError::NodeOffline(node.index()));
        }
        let state = self
            .apps
            .get_mut(app.0)
            .ok_or(SparkliteError::UnknownApp(app.0))?;
        if state.is_finished() {
            return Err(SparkliteError::InvalidState(format!(
                "{app} already finished"
            )));
        }
        // Reserve memory first so failure leaves the app untouched.
        self.cluster.node_mut(node).reserve(reserve_gb)?;
        let taken = self.apps[app.0].take_input(slice_gb);
        if taken <= 1e-12 {
            self.cluster.node_mut(node).release(reserve_gb)?;
            return Ok(None);
        }
        let spec = self.apps[app.0].spec();
        let noise = self.rng.relative_noise(spec.footprint_noise_sd);
        let actual = spec.true_footprint_gb(taken) * noise;
        let cpu = spec.cpu_util;
        let id = ExecutorId(self.next_executor);
        self.next_executor += 1;
        let pos = self.executors.len();
        self.executors.push(Executor::new(
            id,
            app,
            node,
            taken,
            reserve_gb,
            actual,
            cpu,
            self.startup_secs * spec.rate_gb_per_s,
        ));
        self.exec_index.insert(id, pos);
        // A placeholder until the dirtied shard refreshes.
        self.rate_cache.exec_rates.push(0.0);
        // Ids increase monotonically, so a push keeps members sorted.
        self.rate_cache.shards[node.index()].members.push(id);
        self.invalidate(node);
        Ok(Some(id))
    }

    /// Removes executor `id` from the dense storage, its shard's member
    /// list and the position index, dirtying its node. O(log E) plus an
    /// O(members) shift in the member list.
    fn take_executor(&mut self, id: ExecutorId) -> Option<Executor> {
        let pos = self.exec_index.remove(&id)?;
        let exec = self.executors.swap_remove(pos);
        self.rate_cache.exec_rates.swap_remove(pos);
        if pos < self.executors.len() {
            // The former tail moved into `pos`: re-point its index entry.
            let moved = self.executors[pos].id();
            if let Some(entry) = self.exec_index.get_mut(&moved) {
                *entry = pos;
            }
        }
        let shard = &mut self.rate_cache.shards[exec.node().index()];
        if let Ok(m) = shard.members.binary_search(&id) {
            shard.members.remove(m);
        }
        self.invalidate(exec.node());
        Some(exec)
    }

    /// Extends a live executor's slice with more of its application's
    /// unassigned input — §4.3's "the number of data items to give to the
    /// co-located executor is dynamically adjusted over time". The
    /// executor's reservation grows by `extra_reserve_gb` and its actual
    /// footprint is re-drawn for the larger slice. Returns the GB actually
    /// added (0 when the app has nothing left).
    ///
    /// # Errors
    ///
    /// Returns [`SparkliteError::UnknownExecutor`] for dead ids and
    /// [`SparkliteError::Resource`] if the extra reservation does not fit
    /// (the executor is left unchanged).
    pub fn extend_executor(
        &mut self,
        id: ExecutorId,
        extra_gb: f64,
        extra_reserve_gb: f64,
    ) -> Result<f64, SparkliteError> {
        let pos = *self
            .exec_index
            .get(&id)
            .ok_or(SparkliteError::UnknownExecutor(id.0))?;
        let (app, node) = {
            let exec = &self.executors[pos];
            (exec.app(), exec.node())
        };
        if !self.cluster.node(node).is_online() {
            return Err(SparkliteError::NodeOffline(node.index()));
        }
        self.cluster.node_mut(node).reserve(extra_reserve_gb)?;
        let taken = self.apps[app.0].take_input_for_extension(extra_gb);
        if taken <= 1e-12 {
            self.cluster.node_mut(node).release(extra_reserve_gb)?;
            return Ok(0.0);
        }
        let spec = self.apps[app.0].spec();
        let noise = self.rng.relative_noise(spec.footprint_noise_sd);
        let exec = &mut self.executors[pos];
        let new_slice = exec.slice_gb() + taken;
        let new_actual = spec.true_footprint_gb(new_slice) * noise;
        exec.extend(taken, extra_reserve_gb, new_actual);
        self.invalidate(node);
        Ok(taken)
    }

    /// The memory pressure on `node` given the executors' *current*
    /// occupancy (which ramps with progress — see
    /// [`Executor::current_actual_gb`]).
    #[must_use]
    pub fn memory_pressure(&self, node: NodeId) -> MemoryPressure {
        let total: f64 = self
            .executors_on(node)
            .map(Executor::current_actual_gb)
            .sum();
        let spec = self.cluster.node(node).spec();
        self.model.memory_pressure(total, spec.ram_gb, spec.swap_gb)
    }

    /// Nodes whose executors' **final** footprints overflow RAM, in index
    /// order — the only nodes that can ever page or go out-of-memory.
    ///
    /// Current occupancy never exceeds the final footprint
    /// ([`Executor::current_actual_gb`] ramps toward `actual_gb`) and the
    /// floating-point sum is monotone per operand, so a node absent from
    /// this list is guaranteed [`MemoryPressure::Fits`]: scanning only
    /// these candidates for OOM resolution visits exactly the nodes the
    /// full scan could ever act on. Takes `&mut self` to refresh dirty
    /// shards first (the hot flags must reflect pending mutations).
    pub fn hot_nodes_into(&mut self, out: &mut Vec<NodeId>) {
        self.refresh_rates();
        out.clear();
        out.extend(
            self.rate_cache
                .shards
                .iter()
                .enumerate()
                .filter(|(_, s)| s.hot)
                .map(|(i, _)| NodeId(i)),
        );
    }

    /// The youngest executor on `node` — the conventional OOM-kill victim.
    ///
    /// "Youngest" means the highest [`ExecutorId`]: ids are assigned in
    /// strictly increasing spawn order, so when two executors were spawned
    /// at the same simulated timestamp the one whose `spawn_executor` call
    /// came later (larger id) is the victim. This id-order tie-break is
    /// deterministic and mirrors the Linux OOM killer's bias toward the
    /// most recently started process.
    #[must_use]
    pub fn oom_victim(&self, node: NodeId) -> Option<ExecutorId> {
        // Members are sorted ascending, so the max is the last.
        self.rate_cache.shards[node.index()].members.last().copied()
    }

    /// Kills a live executor: its **entire slice** returns to the app's
    /// unassigned pool (an OOM-killed JVM loses its in-memory progress and
    /// must re-run from scratch, §2.3) and its reservation is released.
    /// Returns the GB returned to the pool.
    ///
    /// # Errors
    ///
    /// Returns [`SparkliteError::UnknownExecutor`] for dead ids.
    pub fn kill_executor(&mut self, id: ExecutorId) -> Result<f64, SparkliteError> {
        let exec = self
            .take_executor(id)
            .ok_or(SparkliteError::UnknownExecutor(id.0))?;
        self.apps[exec.app().0].abort_slice(0.0, exec.slice_gb());
        self.cluster
            .node_mut(exec.node())
            .release(exec.reserved_gb())?;
        Ok(exec.slice_gb())
    }

    /// Whether `node` is online (accepting spawns and extensions).
    ///
    /// # Panics
    ///
    /// Panics on an id from another cluster.
    #[must_use]
    pub fn node_online(&self, node: NodeId) -> bool {
        self.cluster.node(node).is_online()
    }

    /// Crashes a node: every live executor on it is killed — each slice
    /// returns in full to its application's unassigned pool, exactly like
    /// an OOM kill — the node's reservations drop to zero and the node
    /// goes offline (spawns and extensions are refused until
    /// [`ClusterEngine::restore_node`]). Returns the killed executors'
    /// `(owner, lost slice GB)` pairs in spawn order. Failing a node that
    /// is already offline is a no-op returning an empty list, so
    /// overlapping outages in a fault plan compose safely.
    ///
    /// # Errors
    ///
    /// Returns [`SparkliteError::UnknownNode`] for bad ids, and propagates
    /// reservation-accounting failures from the kills (which indicate
    /// engine bugs, not expected conditions).
    pub fn fail_node(&mut self, node: NodeId) -> Result<Vec<(AppId, f64)>, SparkliteError> {
        if !self.cluster.contains(node) {
            return Err(SparkliteError::UnknownNode(node.index()));
        }
        if !self.cluster.node(node).is_online() {
            return Ok(Vec::new());
        }
        let victims = self.node_executors(node);
        let mut lost = Vec::with_capacity(victims.len());
        for id in victims {
            let owner = self.executor(id)?.app();
            let slice = self.kill_executor(id)?;
            lost.push((owner, slice));
        }
        self.cluster.node_mut(node).set_online(false);
        self.invalidate(node);
        Ok(lost)
    }

    /// Brings a crashed node back online with empty memory. Restoring an
    /// online node is a no-op.
    ///
    /// # Errors
    ///
    /// Returns [`SparkliteError::UnknownNode`] for bad ids.
    pub fn restore_node(&mut self, node: NodeId) -> Result<(), SparkliteError> {
        if !self.cluster.contains(node) {
            return Err(SparkliteError::UnknownNode(node.index()));
        }
        self.cluster.node_mut(node).set_online(true);
        self.invalidate(node);
        Ok(())
    }

    /// Refreshes every dirty shard of the rate cache.
    ///
    /// Per shard: demands are gathered in member (id) order — exactly the
    /// order [`ClusterEngine::current_rates`] visits a node's executors —
    /// the multipliers come from the same
    /// [`InterferenceModel::rate_multipliers_into`] call, and each rate is
    /// the same `nominal * multiplier` product, so a refreshed shard is
    /// bit-identical to a from-scratch recomputation. The shard's `hot`
    /// flag and minimum completion key are recomputed alongside and the
    /// tournament tree is updated. Shards are independent, so refresh
    /// order cannot affect any value.
    ///
    /// Storm-sized dirty sets (≥ [`PAR_REFRESH_MIN_SHARDS`], with more
    /// than one refresh worker configured) fan across scoped workers
    /// (DESIGN.md §17); the serial loop is retained verbatim as the
    /// oracle and handles every steady-state refresh.
    fn refresh_rates(&mut self) {
        if self.rate_cache.dirty_stack.is_empty() {
            return;
        }
        if self.rate_cache.workers > 1
            && self.rate_cache.dirty_stack.len() >= PAR_REFRESH_MIN_SHARDS
        {
            self.refresh_rates_parallel();
        } else {
            self.refresh_rates_serial();
        }
    }

    /// The serial refresh loop — the bit-identity oracle for
    /// [`ClusterEngine::refresh_rates_parallel`].
    fn refresh_rates_serial(&mut self) {
        let apps = &self.apps;
        let executors = &self.executors;
        let exec_index = &self.exec_index;
        let cluster = &self.cluster;
        let model = &self.model;
        let elapsed = self.elapsed;
        let RateCache {
            exec_rates,
            shards,
            dirty_stack,
            is_dirty,
            tree,
            node_demands,
            multipliers,
            member_pos,
            ..
        } = &mut self.rate_cache;

        while let Some(n) = dirty_stack.pop() {
            is_dirty[n] = false;
            let shard = &mut shards[n];
            node_demands.clear();
            member_pos.clear();
            for id in &shard.members {
                let Some(&pos) = exec_index.get(id) else {
                    debug_assert!(false, "shard member {id} missing from the index");
                    continue;
                };
                member_pos.push(pos);
                let e = &executors[pos];
                node_demands.push(ExecutorDemand {
                    cpu_util: e.cpu_util(),
                    actual_gb: e.current_actual_gb(),
                });
            }
            let ram = cluster.node(NodeId(n)).spec().ram_gb;
            model.rate_multipliers_into(node_demands, ram, multipliers);

            let mut final_total = 0.0f64;
            let mut best: Option<(f64, ExecutorId)> = None;
            for (&pos, &mult) in member_pos.iter().zip(multipliers.iter()) {
                let e = &executors[pos];
                let nominal = apps[e.app().0].spec().rate_gb_per_s;
                let rate = nominal * mult;
                exec_rates[pos] = rate;
                final_total += e.actual_gb();
                let cand = (e.remaining_work_gb() / rate.max(1e-12), e.id());
                if best.is_none_or(|b| cand < b) {
                    best = Some(cand);
                }
            }
            shard.hot = final_total > ram;
            shard.key = best.map(|(dt, id)| ShardKey {
                t: elapsed + dt,
                elapsed,
                dt,
                id,
            });
            tree.update(n, shard.key);
        }
    }

    /// Fans a storm-sized refresh across `workers` scoped threads.
    ///
    /// Bit-identity with [`ClusterEngine::refresh_rates_serial`] rests on
    /// three facts (DESIGN.md §17): each shard's arithmetic reads only its
    /// own members plus immutable engine state, so per-shard floats are
    /// the serial ones regardless of which worker runs them; results are
    /// committed in ascending shard index (and write disjoint
    /// `exec_rates` slots anyway); and the one bulk tournament repair
    /// reaches exactly the fixed point the serial per-shard pokes reach,
    /// because `winner_of` is a pure function of final leaf values.
    fn refresh_rates_parallel(&mut self) {
        let apps = &self.apps;
        let executors = &self.executors;
        let exec_index = &self.exec_index;
        let cluster = &self.cluster;
        let model = &self.model;
        let elapsed = self.elapsed;
        let RateCache {
            workers,
            exec_rates,
            shards,
            dirty_stack,
            is_dirty,
            tree,
            par_dirty,
            par_out,
            par_scratch,
            tree_batch,
            ..
        } = &mut self.rate_cache;

        // Drain the dirty set into a canonical (ascending) claim order.
        // The stack holds each shard at most once by construction.
        par_dirty.clear();
        par_dirty.append(dirty_stack);
        par_dirty.sort_unstable();
        for &n in par_dirty.iter() {
            is_dirty[n] = false;
        }

        let shards_ref: &[NodeShard] = shards;
        simkit::par::par_for_shards(
            par_dirty,
            *workers,
            par_scratch,
            RefreshScratch::default,
            par_out,
            |_, &n, scratch| {
                let shard = &shards_ref[n];
                let RefreshScratch {
                    node_demands,
                    multipliers,
                    member_pos,
                } = scratch;
                node_demands.clear();
                member_pos.clear();
                for id in &shard.members {
                    let Some(&pos) = exec_index.get(id) else {
                        debug_assert!(false, "shard member {id} missing from the index");
                        continue;
                    };
                    member_pos.push(pos);
                    let e = &executors[pos];
                    node_demands.push(ExecutorDemand {
                        cpu_util: e.cpu_util(),
                        actual_gb: e.current_actual_gb(),
                    });
                }
                let ram = cluster.node(NodeId(n)).spec().ram_gb;
                model.rate_multipliers_into(node_demands, ram, multipliers);

                let mut final_total = 0.0f64;
                let mut best: Option<(f64, ExecutorId)> = None;
                let mut rates = Vec::with_capacity(member_pos.len());
                for (&pos, &mult) in member_pos.iter().zip(multipliers.iter()) {
                    let e = &executors[pos];
                    let nominal = apps[e.app().0].spec().rate_gb_per_s;
                    let rate = nominal * mult;
                    rates.push((pos, rate));
                    final_total += e.actual_gb();
                    let cand = (e.remaining_work_gb() / rate.max(1e-12), e.id());
                    if best.is_none_or(|b| cand < b) {
                        best = Some(cand);
                    }
                }
                ShardRefresh {
                    hot: final_total > ram,
                    key: best.map(|(dt, id)| ShardKey {
                        t: elapsed + dt,
                        elapsed,
                        dt,
                        id,
                    }),
                    rates,
                }
            },
        );

        // Index-ordered commit — the serial loop's write order.
        tree_batch.clear();
        for (i, &n) in par_dirty.iter().enumerate() {
            let Some(result) = par_out[i].take() else {
                debug_assert!(false, "shard {n} missing its refresh result");
                continue;
            };
            for &(pos, rate) in &result.rates {
                exec_rates[pos] = rate;
            }
            let shard = &mut shards[n];
            shard.hot = result.hot;
            shard.key = result.key;
            tree_batch.push((n, result.key));
        }
        tree.update_bulk(tree_batch);
        par_dirty.clear();
    }

    /// Sets the worker budget for storm-sized rate refreshes (clamped to
    /// ≥ 1; 1 pins the engine to the serial oracle). Defaults to
    /// [`simkit::par::available_workers`], so `SPARK_MOE_THREADS` governs
    /// engines the same way it governs campaign fan-out. Worker count
    /// never changes an output bit — see DESIGN.md §17.
    pub fn set_refresh_workers(&mut self, workers: usize) {
        self.rate_cache.workers = workers.max(1);
    }

    /// The configured refresh worker budget.
    #[must_use]
    pub fn refresh_workers(&self) -> usize {
        self.rate_cache.workers
    }

    /// Effective rates under the current placement served from the
    /// engine's incremental cache, as `(executor id, GB/s)` pairs in id
    /// order. Refreshes dirty shards if mutations invalidated them;
    /// bit-identical to [`ClusterEngine::current_rates`].
    pub fn cached_current_rates(&mut self) -> &[(ExecutorId, f64)] {
        self.refresh_rates();
        let exec_rates = &self.rate_cache.exec_rates;
        let executors = &self.executors;
        self.rate_cache.pairs.clear();
        self.rate_cache.pairs.extend(
            self.exec_index
                .iter()
                .map(|(&id, &pos)| (id, exec_rates[pos])),
        );
        let _ = executors;
        &self.rate_cache.pairs
    }

    /// Effective processing rate (GB/s) of each live executor under the
    /// current placement, keyed by executor id.
    ///
    /// Always recomputes from scratch and allocates the map; this is the
    /// reference implementation the sharded cache is checked against. It
    /// deliberately bypasses the shard membership lists (it sorts the
    /// dense storage itself), so it cross-checks those too. Hot paths use
    /// [`ClusterEngine::cached_current_rates`] instead.
    #[must_use]
    pub fn current_rates(&self) -> BTreeMap<ExecutorId, f64> {
        let mut by_id: Vec<&Executor> = self.executors.iter().collect();
        by_id.sort_by_key(|e| e.id());
        let mut rates = BTreeMap::new();
        for node in self.cluster.node_ids() {
            let execs: Vec<&&Executor> = by_id.iter().filter(|e| e.node() == node).collect();
            if execs.is_empty() {
                continue;
            }
            let demands: Vec<ExecutorDemand> = execs
                .iter()
                .map(|e| ExecutorDemand {
                    cpu_util: e.cpu_util(),
                    actual_gb: e.current_actual_gb(),
                })
                .collect();
            let multipliers = self
                .model
                .rate_multipliers(&demands, self.cluster.node(node).spec().ram_gb);
            for (e, mult) in execs.iter().zip(multipliers) {
                let nominal = self.apps[e.app().0].spec().rate_gb_per_s;
                rates.insert(e.id(), nominal * mult);
            }
        }
        rates
    }

    /// Time until the next executor finishes its slice at current rates,
    /// together with the finisher (earliest; ties broken by id). `None`
    /// when no executors are live.
    ///
    /// Served by the tournament tree in O(log N) after refreshing dirty
    /// shards; the returned delay is always recomputed fresh from the
    /// winner's live state, so it carries exactly the bits
    /// [`ClusterEngine::next_completion_naive`] would produce. Takes
    /// `&mut self` only to refresh the rate cache; the simulation state is
    /// otherwise untouched.
    pub fn next_completion(&mut self) -> Option<(f64, ExecutorId)> {
        self.refresh_rates();
        let (key, _) = self.rate_cache.tree.winner()?;
        let &pos = self.exec_index.get(&key.id)?;
        let e = &self.executors[pos];
        let rate = self.rate_cache.exec_rates[pos].max(1e-12);
        Some((e.remaining_work_gb() / rate, e.id()))
    }

    /// From-scratch reference for [`ClusterEngine::next_completion`]: the
    /// `(delay, id)`-lexicographic minimum over all live executors with
    /// rates recomputed by [`ClusterEngine::current_rates`]. O(N·E) and
    /// allocating — this is the oracle the property tests pin the
    /// tournament tree against, not a production path.
    #[must_use]
    pub fn next_completion_naive(&self) -> Option<(f64, ExecutorId)> {
        let rates = self.current_rates();
        rates
            .iter()
            .map(|(&id, &r)| {
                let pos = self.exec_index[&id];
                let rate = r.max(1e-12);
                (self.executors[pos].remaining_work_gb() / rate, id)
            })
            // Times are finite (rates are clamped away from zero), so the
            // partial order is total here; `Equal` would only ever keep
            // the fold's current candidate.
            .min_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// Advances every live executor by `dt` seconds at current rates.
    ///
    /// The progress integration is the same executor-local
    /// `advance(rate · dt)` whatever the storage order (no cross-executor
    /// arithmetic), so the dense unordered scan is bit-identical to an
    /// id-ordered one. Afterwards, hot shards are re-dirtied (their paging
    /// factors track the ramping occupancy) and so is any shard whose
    /// executor just finished (its completion key must go fresh so
    /// same-instant ties resolve in id order, as the oracle does); cool
    /// shards keep rates and keys — their multipliers are provably
    /// unchanged and their keys store absolute completion times.
    ///
    /// # Panics
    ///
    /// Panics on negative `dt`.
    pub fn advance(&mut self, dt: f64) {
        assert!(dt >= 0.0, "cannot advance by negative time");
        if dt == 0.0 {
            return;
        }
        self.refresh_rates();
        let RateCache {
            mode,
            exec_rates,
            shards,
            dirty_stack,
            is_dirty,
            ..
        } = &mut self.rate_cache;
        debug_assert_eq!(exec_rates.len(), self.executors.len());
        for (exec, &rate) in self.executors.iter_mut().zip(exec_rates.iter()) {
            exec.advance(rate * dt);
            if exec.is_done() {
                let n = exec.node().index();
                if !is_dirty[n] {
                    is_dirty[n] = true;
                    dirty_stack.push(n);
                }
            }
        }
        self.elapsed += dt;
        match mode {
            RateCacheMode::Sharded => {
                for (n, shard) in shards.iter().enumerate() {
                    if shard.hot && !is_dirty[n] {
                        is_dirty[n] = true;
                        dirty_stack.push(n);
                    }
                }
            }
            RateCacheMode::WholePlacement => {
                for (n, dirty) in is_dirty.iter_mut().enumerate().take(shards.len()) {
                    if !*dirty {
                        *dirty = true;
                        dirty_stack.push(n);
                    }
                }
            }
        }
    }

    /// Completes an executor whose slice is done: releases its reservation
    /// and credits the slice to the application.
    ///
    /// # Errors
    ///
    /// Returns [`SparkliteError::UnknownExecutor`] for dead ids and
    /// [`SparkliteError::InvalidState`] if the slice is not finished yet.
    pub fn complete_executor(&mut self, id: ExecutorId) -> Result<(), SparkliteError> {
        let exec = self.executor(id)?;
        if !exec.is_done() {
            return Err(SparkliteError::InvalidState(format!(
                "{id} still has {:.3} GB remaining",
                exec.remaining_gb()
            )));
        }
        let Some(exec) = self.take_executor(id) else {
            return Err(SparkliteError::UnknownExecutor(id.0));
        };
        self.apps[exec.app().0].finish_slice(exec.slice_gb());
        self.cluster
            .node_mut(exec.node())
            .release(exec.reserved_gb())?;
        Ok(())
    }

    /// Instantaneous CPU load of `node` as a fraction in `[0, 1]`: the sum
    /// of executor demands, capped at capacity. This is what the resource
    /// monitor daemon reports (§4.2) and what Fig. 7 plots. O(members),
    /// served from the node's shard.
    #[must_use]
    pub fn node_cpu_load(&self, node: NodeId) -> f64 {
        let total: f64 = self.executors_on(node).map(Executor::cpu_util).sum();
        total.min(1.0)
    }

    /// Free memory (GB) on `node` by scheduler reservations.
    #[must_use]
    pub fn node_free_memory(&self, node: NodeId) -> f64 {
        self.cluster.node(node).free_memory_gb()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlkit::regression::{CurveFamily, FittedCurve};

    fn linear_app(name: &str, input: f64, cpu: f64) -> AppSpec {
        AppSpec {
            name: name.into(),
            input_gb: input,
            rate_gb_per_s: 1.0,
            cpu_util: cpu,
            memory_curve: FittedCurve {
                family: CurveFamily::Linear,
                m: 0.5,
                b: 1.0,
            },
            footprint_noise_sd: 0.0,
        }
    }

    fn engine(nodes: usize) -> ClusterEngine {
        ClusterEngine::new(ClusterSpec::small(nodes), InterferenceModel::default())
    }

    #[test]
    fn solo_executor_finishes_in_nominal_time() {
        let mut eng = engine(1);
        let app = eng.submit(linear_app("a", 10.0, 0.3));
        let node = eng.cluster().node_ids()[0];
        let id = eng.spawn_executor(app, node, 10.0, 6.0).unwrap().unwrap();
        let (dt, who) = eng.next_completion().unwrap();
        assert_eq!(who, id);
        assert!((dt - 10.0).abs() < 1e-9, "dt = {dt}");
        eng.advance(dt);
        eng.complete_executor(id).unwrap();
        assert!(eng.app(app).is_finished());
        assert_eq!(eng.node_free_memory(node), 64.0);
    }

    #[test]
    fn co_located_executors_slow_each_other_mildly() {
        let mut eng = engine(1);
        let a = eng.submit(linear_app("a", 10.0, 0.35));
        let b = eng.submit(linear_app("b", 10.0, 0.40));
        let node = eng.cluster().node_ids()[0];
        eng.spawn_executor(a, node, 10.0, 6.0).unwrap().unwrap();
        eng.spawn_executor(b, node, 10.0, 6.0).unwrap().unwrap();
        let (dt, _) = eng.next_completion().unwrap();
        // Both slowed by < 10 % relative to the 10 s solo time.
        assert!(dt > 10.0 && dt < 11.0, "dt = {dt}");
    }

    #[test]
    fn slice_clamped_to_remaining_input() {
        let mut eng = engine(1);
        let app = eng.submit(linear_app("a", 5.0, 0.3));
        let node = eng.cluster().node_ids()[0];
        let id = eng.spawn_executor(app, node, 100.0, 10.0).unwrap().unwrap();
        assert_eq!(eng.executor(id).unwrap().slice_gb(), 5.0);
        assert_eq!(eng.app(app).unassigned_gb(), 0.0);
        // Nothing left: next spawn returns None and releases memory.
        let none = eng.spawn_executor(app, node, 10.0, 10.0).unwrap();
        assert!(none.is_none());
        assert_eq!(eng.node_free_memory(node), 64.0 - 10.0);
    }

    #[test]
    fn reservation_failure_leaves_app_untouched() {
        let mut eng = engine(1);
        let app = eng.submit(linear_app("a", 10.0, 0.3));
        let node = eng.cluster().node_ids()[0];
        let err = eng.spawn_executor(app, node, 10.0, 100.0);
        assert!(matches!(err, Err(SparkliteError::Resource(_))));
        assert_eq!(eng.app(app).unassigned_gb(), 10.0);
        assert_eq!(eng.live_executors(), 0);
    }

    #[test]
    fn oom_detection_and_kill() {
        let mut eng = engine(1);
        // Each executor actually needs 45 GB: two fit in RAM+swap only
        // via paging... actually 90 > 64+16, so OOM.
        let big = AppSpec {
            memory_curve: FittedCurve {
                family: CurveFamily::Linear,
                m: 0.0,
                b: 45.0,
            },
            ..linear_app("big", 100.0, 0.3)
        };
        let a = eng.submit(big.clone());
        let b = eng.submit(big);
        let node = eng.cluster().node_ids()[0];
        // Scheduler under-predicts: reserves only 20 GB each. At launch
        // both fit (memory ramps with progress)...
        eng.spawn_executor(a, node, 50.0, 20.0).unwrap().unwrap();
        let second = eng.spawn_executor(b, node, 50.0, 20.0).unwrap().unwrap();
        assert!(!matches!(
            eng.memory_pressure(node),
            MemoryPressure::OutOfMemory
        ));
        // ...but as the executors cache their slices the combined 90 GB
        // working set blows past RAM + swap mid-run.
        if let Some((dt, _)) = eng.next_completion() {
            eng.advance(dt * 0.9);
        }
        assert_eq!(eng.memory_pressure(node), MemoryPressure::OutOfMemory);
        let victim = eng.oom_victim(node).unwrap();
        assert_eq!(victim, second, "youngest executor is the victim");
        let returned = eng.kill_executor(victim).unwrap();
        assert_eq!(returned, 50.0, "the whole slice re-runs: progress is lost");
        assert_eq!(eng.app(b).unassigned_gb(), 100.0);
        assert!(!matches!(
            eng.memory_pressure(node),
            MemoryPressure::OutOfMemory
        ));
    }

    #[test]
    fn oom_victim_tie_break_is_executor_id_order() {
        // Two executors spawned at the same simulated timestamp (no
        // advance between the calls): the victim must be the one spawned
        // by the LATER call — the larger ExecutorId — pinning the
        // documented id-order tie-break.
        let mut eng = engine(1);
        let a = eng.submit(linear_app("a", 20.0, 0.3));
        let b = eng.submit(linear_app("b", 20.0, 0.3));
        let node = eng.cluster().node_ids()[0];
        let first = eng.spawn_executor(a, node, 10.0, 6.0).unwrap().unwrap();
        let second = eng.spawn_executor(b, node, 10.0, 6.0).unwrap().unwrap();
        assert!(second > first, "ids increase in spawn order");
        assert_eq!(eng.oom_victim(node), Some(second));
        // Kill the younger: the tie-break now selects the survivor.
        eng.kill_executor(second).unwrap();
        assert_eq!(eng.oom_victim(node), Some(first));
        eng.kill_executor(first).unwrap();
        assert_eq!(eng.oom_victim(node), None);
    }

    #[test]
    fn hot_nodes_track_final_footprints() {
        let mut eng = engine(2);
        let nodes = eng.cluster().node_ids();
        // A cool app (final 6 GB) on node 0, a hot pair (45 GB each,
        // 90 GB total > 64 GB RAM) on node 1.
        let cool = eng.submit(linear_app("cool", 10.0, 0.3));
        let big = AppSpec {
            memory_curve: FittedCurve {
                family: CurveFamily::Linear,
                m: 0.0,
                b: 45.0,
            },
            ..linear_app("big", 100.0, 0.3)
        };
        let h = eng.submit(big);
        eng.spawn_executor(cool, nodes[0], 10.0, 6.0)
            .unwrap()
            .unwrap();
        let mut hot = Vec::new();
        eng.hot_nodes_into(&mut hot);
        assert!(hot.is_empty(), "a 6 GB footprint cannot page");
        let v1 = eng
            .spawn_executor(h, nodes[1], 50.0, 20.0)
            .unwrap()
            .unwrap();
        let v2 = eng
            .spawn_executor(h, nodes[1], 50.0, 20.0)
            .unwrap()
            .unwrap();
        eng.hot_nodes_into(&mut hot);
        assert_eq!(hot, vec![nodes[1]], "only the overloaded node is hot");
        // Killing the pair cools the node again.
        eng.kill_executor(v2).unwrap();
        eng.kill_executor(v1).unwrap();
        eng.hot_nodes_into(&mut hot);
        assert!(hot.is_empty());
    }

    #[test]
    fn failed_node_refuses_work_and_returns_slices() {
        let mut eng = engine(2);
        let app = eng.submit(linear_app("a", 30.0, 0.3));
        let nodes = eng.cluster().node_ids();
        let id = eng
            .spawn_executor(app, nodes[0], 10.0, 6.0)
            .unwrap()
            .unwrap();
        eng.advance(5.0); // half the slice processed, then the node dies
        let lost = eng.fail_node(nodes[0]).unwrap();
        assert_eq!(lost, vec![(app, 10.0)], "whole slice is lost, like OOM");
        // Work conservation: the slice is back in the unassigned pool.
        assert_eq!(eng.app(app).unassigned_gb(), 30.0);
        assert_eq!(eng.app(app).processed_gb(), 0.0);
        assert_eq!(eng.live_executors(), 0);
        // Memory returned; node offline; spawns/extensions refused.
        assert_eq!(eng.node_free_memory(nodes[0]), 64.0);
        assert!(!eng.node_online(nodes[0]));
        assert!(eng.node_online(nodes[1]));
        assert!(matches!(
            eng.spawn_executor(app, nodes[0], 10.0, 6.0),
            Err(SparkliteError::NodeOffline(0))
        ));
        assert!(matches!(
            eng.executor(id),
            Err(SparkliteError::UnknownExecutor(_))
        ));
        // Double-fail is a harmless no-op; restore brings it back.
        assert!(eng.fail_node(nodes[0]).unwrap().is_empty());
        eng.restore_node(nodes[0]).unwrap();
        assert!(eng.node_online(nodes[0]));
        eng.spawn_executor(app, nodes[0], 10.0, 6.0)
            .unwrap()
            .unwrap();
    }

    #[test]
    fn node_lifecycle_error_paths() {
        // Failing a node never strands executors elsewhere, and bad node
        // ids surface as UnknownNode from both lifecycle calls.
        let mut eng = engine(2);
        let app = eng.submit(linear_app("a", 30.0, 0.3));
        let nodes = eng.cluster().node_ids();
        let id = eng
            .spawn_executor(app, nodes[0], 10.0, 6.0)
            .unwrap()
            .unwrap();
        // Fail the OTHER node: extension on the live node still works.
        eng.fail_node(nodes[1]).unwrap();
        assert_eq!(eng.extend_executor(id, 5.0, 3.0).unwrap(), 5.0);
        assert!(matches!(
            eng.fail_node(NodeId(9)),
            Err(SparkliteError::UnknownNode(9))
        ));
        assert!(matches!(
            eng.restore_node(NodeId(9)),
            Err(SparkliteError::UnknownNode(9))
        ));
    }

    #[test]
    fn paging_slows_execution() {
        let mut eng = engine(1);
        let heavy = AppSpec {
            memory_curve: FittedCurve {
                family: CurveFamily::Linear,
                m: 0.0,
                b: 78.0, // ramps to 14 GB over RAM, within swap
            },
            ..linear_app("heavy", 10.0, 0.3)
        };
        let app = eng.submit(heavy);
        let node = eng.cluster().node_ids()[0];
        eng.spawn_executor(app, node, 10.0, 60.0).unwrap().unwrap();
        // Run to 90 % progress: the working set has ramped past RAM.
        eng.advance(9.0);
        assert!(matches!(
            eng.memory_pressure(node),
            MemoryPressure::Paging(_)
        ));
        let (dt, _) = eng.next_completion().unwrap();
        assert!(
            dt > 2.0,
            "the paging tail should far exceed the 1 s of remaining work: {dt}"
        );
    }

    #[test]
    fn completion_requires_done_slice() {
        let mut eng = engine(1);
        let app = eng.submit(linear_app("a", 10.0, 0.3));
        let node = eng.cluster().node_ids()[0];
        let id = eng.spawn_executor(app, node, 10.0, 6.0).unwrap().unwrap();
        assert!(matches!(
            eng.complete_executor(id),
            Err(SparkliteError::InvalidState(_))
        ));
        eng.advance(10.0);
        eng.complete_executor(id).unwrap();
    }

    #[test]
    fn profiling_credit_counts_toward_completion() {
        let mut eng = engine(1);
        let app = eng.submit(linear_app("a", 10.0, 0.3));
        eng.credit_profiled(app, 1.5);
        assert_eq!(eng.app(app).processed_gb(), 1.5);
        assert_eq!(eng.app(app).unassigned_gb(), 8.5);
    }

    #[test]
    fn measure_footprint_is_noisy_but_unbiased() {
        let mut eng = engine(1);
        let mut noisy = linear_app("a", 10.0, 0.3);
        noisy.footprint_noise_sd = 0.05;
        let app = eng.submit(noisy);
        let n = 500;
        let mean: f64 = (0..n)
            .map(|_| eng.measure_footprint(app, 10.0))
            .sum::<f64>()
            / n as f64;
        // truth = 0.5·10 + 1 = 6 GB.
        assert!((mean - 6.0).abs() < 0.1, "mean = {mean}");
    }

    #[test]
    fn cpu_load_caps_at_one() {
        let mut eng = engine(1);
        let node = eng.cluster().node_ids()[0];
        for _ in 0..4 {
            let app = eng.submit(linear_app("x", 10.0, 0.4));
            eng.spawn_executor(app, node, 10.0, 6.0).unwrap().unwrap();
        }
        assert_eq!(eng.node_cpu_load(node), 1.0);
        assert_eq!(eng.live_executors(), 4);
        assert_eq!(eng.node_executors(node).len(), 4);
    }

    #[test]
    fn spawn_on_finished_app_is_invalid() {
        let mut eng = engine(1);
        let app = eng.submit(linear_app("a", 1.0, 0.3));
        let node = eng.cluster().node_ids()[0];
        let id = eng.spawn_executor(app, node, 1.0, 2.0).unwrap().unwrap();
        eng.advance(1.0);
        eng.complete_executor(id).unwrap();
        assert!(matches!(
            eng.spawn_executor(app, node, 1.0, 2.0),
            Err(SparkliteError::InvalidState(_))
        ));
    }

    #[test]
    fn extension_grows_a_running_executor() {
        let mut eng = engine(1);
        let app = eng.submit(linear_app("a", 30.0, 0.3));
        let node = eng.cluster().node_ids()[0];
        let id = eng.spawn_executor(app, node, 10.0, 6.0).unwrap().unwrap();
        eng.advance(4.0);
        let added = eng.extend_executor(id, 10.0, 5.0).unwrap();
        assert_eq!(added, 10.0);
        let exec = eng.executor(id).unwrap();
        assert_eq!(exec.slice_gb(), 20.0);
        assert_eq!(exec.reserved_gb(), 11.0);
        assert_eq!(eng.app(app).unassigned_gb(), 10.0);
        // 16 GB of data remain on the extended executor.
        let (dt, _) = eng.next_completion().unwrap();
        assert!((dt - 16.0).abs() < 1e-9, "dt = {dt}");
        eng.advance(dt);
        eng.complete_executor(id).unwrap();
        assert_eq!(eng.app(app).processed_gb(), 20.0);
        assert_eq!(eng.node_free_memory(node), 64.0);
    }

    #[test]
    fn extension_fails_cleanly_without_memory() {
        let mut eng = engine(1);
        let app = eng.submit(linear_app("a", 30.0, 0.3));
        let node = eng.cluster().node_ids()[0];
        let id = eng.spawn_executor(app, node, 10.0, 60.0).unwrap().unwrap();
        let err = eng.extend_executor(id, 10.0, 10.0);
        assert!(matches!(err, Err(SparkliteError::Resource(_))));
        // Untouched on failure.
        assert_eq!(eng.executor(id).unwrap().slice_gb(), 10.0);
        assert_eq!(eng.app(app).unassigned_gb(), 20.0);
    }

    #[test]
    fn extension_of_drained_app_is_zero() {
        let mut eng = engine(1);
        let app = eng.submit(linear_app("a", 10.0, 0.3));
        let node = eng.cluster().node_ids()[0];
        let id = eng.spawn_executor(app, node, 10.0, 6.0).unwrap().unwrap();
        assert_eq!(eng.extend_executor(id, 5.0, 1.0).unwrap(), 0.0);
        assert_eq!(eng.node_free_memory(node), 58.0, "reservation rolled back");
    }

    #[test]
    fn all_finished_reflects_progress() {
        let mut eng = engine(1);
        assert!(eng.all_finished(), "vacuously true with no apps");
        let app = eng.submit(linear_app("a", 1.0, 0.3));
        assert!(!eng.all_finished());
        let node = eng.cluster().node_ids()[0];
        let id = eng.spawn_executor(app, node, 1.0, 2.0).unwrap().unwrap();
        eng.advance(1.0);
        eng.complete_executor(id).unwrap();
        assert!(eng.all_finished());
    }

    #[test]
    fn whole_placement_mode_is_bit_identical() {
        // The WholePlacement cost model must be invisible in every output:
        // drive two engines through the same mixed workload and compare
        // rates, completions and progress bit-for-bit at each step.
        let mk = || {
            let mut eng =
                ClusterEngine::with_seed(ClusterSpec::small(3), InterferenceModel::default(), 7);
            let mut specs = Vec::new();
            for i in 0..3 {
                let mut spec = linear_app(&format!("app{i}"), 40.0, 0.3 + 0.1 * i as f64);
                spec.footprint_noise_sd = 0.04;
                specs.push(eng.submit(spec));
            }
            (eng, specs)
        };
        let (mut a, apps_a) = mk();
        let (mut b, apps_b) = mk();
        b.set_rate_cache_mode(RateCacheMode::WholePlacement);
        assert_eq!(apps_a, apps_b);
        let nodes = a.cluster().node_ids();
        for step in 0..30 {
            let app = apps_a[step % 3];
            let node = nodes[step % 3];
            let ra = a.spawn_executor(app, node, 8.0, 7.0);
            let rb = b.spawn_executor(app, node, 8.0, 7.0);
            assert_eq!(ra, rb, "step {step}");
            let ca = a.cached_current_rates().to_vec();
            let cb = b.cached_current_rates().to_vec();
            assert_eq!(ca.len(), cb.len());
            for ((ia, ra), (ib, rb)) in ca.iter().zip(cb.iter()) {
                assert_eq!(ia, ib);
                assert_eq!(ra.to_bits(), rb.to_bits(), "step {step}");
            }
            let na = a.next_completion();
            let nb = b.next_completion();
            match (na, nb) {
                (Some((da, ia)), Some((db, ib))) => {
                    assert_eq!(da.to_bits(), db.to_bits(), "step {step}");
                    assert_eq!(ia, ib, "step {step}");
                    let dt = da * 0.5;
                    a.advance(dt);
                    b.advance(dt);
                }
                (x, y) => assert_eq!(x.map(|(_, i)| i), y.map(|(_, i)| i)),
            }
        }
    }

    #[test]
    fn parallel_refresh_is_bit_identical_to_the_serial_oracle() {
        // A 128-node WholePlacement engine dirties every shard on every
        // mutation/advance, so each refresh clears the parallel gate.
        // Drive a serial-pinned twin through the same workload and demand
        // bit-equal rates, completions, hot sets and elapsed time.
        let mk = || {
            let mut eng = ClusterEngine::with_seed(
                ClusterSpec::with_nodes(128),
                InterferenceModel::default(),
                13,
            );
            eng.set_rate_cache_mode(RateCacheMode::WholePlacement);
            let mut apps = Vec::new();
            for i in 0..6 {
                let mut spec = linear_app(&format!("app{i}"), 500.0, 0.25 + 0.05 * i as f64);
                spec.footprint_noise_sd = 0.05;
                apps.push(eng.submit(spec));
            }
            (eng, apps)
        };
        let (mut par, apps_p) = mk();
        let (mut ser, apps_s) = mk();
        assert_eq!(apps_p, apps_s);
        par.set_refresh_workers(4);
        ser.set_refresh_workers(1);
        let nodes = par.cluster().node_ids();
        let mut hot_p = Vec::new();
        let mut hot_s = Vec::new();
        for step in 0..200 {
            let app = apps_p[step % apps_p.len()];
            let node = nodes[(step * 29) % nodes.len()];
            let rp = par.spawn_executor(app, node, 6.0, 5.0);
            let rs = ser.spawn_executor(app, node, 6.0, 5.0);
            assert_eq!(rp, rs, "step {step}");
            let cp = par.cached_current_rates().to_vec();
            let cs = ser.cached_current_rates().to_vec();
            assert_eq!(cp.len(), cs.len(), "step {step}");
            for ((ip, rp), (is, rs)) in cp.iter().zip(cs.iter()) {
                assert_eq!(ip, is, "step {step}");
                assert_eq!(rp.to_bits(), rs.to_bits(), "step {step}");
            }
            par.hot_nodes_into(&mut hot_p);
            ser.hot_nodes_into(&mut hot_s);
            assert_eq!(hot_p, hot_s, "step {step}");
            let np = par.next_completion();
            let ns = ser.next_completion();
            match (np, ns) {
                (Some((dp, ip)), Some((ds, is))) => {
                    assert_eq!(dp.to_bits(), ds.to_bits(), "step {step}");
                    assert_eq!(ip, is, "step {step}");
                    let dt = dp * 0.75;
                    par.advance(dt);
                    ser.advance(dt);
                    assert_eq!(
                        par.elapsed_secs().to_bits(),
                        ser.elapsed_secs().to_bits(),
                        "step {step}"
                    );
                }
                (x, y) => assert_eq!(x.map(|(_, i)| i), y.map(|(_, i)| i), "step {step}"),
            }
        }
    }

    #[test]
    fn next_completion_matches_naive_oracle_through_a_workload() {
        let mut eng =
            ClusterEngine::with_seed(ClusterSpec::small(4), InterferenceModel::default(), 11);
        let apps: Vec<AppId> = (0..4)
            .map(|i| eng.submit(linear_app(&format!("a{i}"), 60.0, 0.25 + 0.05 * i as f64)))
            .collect();
        let nodes = eng.cluster().node_ids();
        for (i, &app) in apps.iter().enumerate() {
            eng.spawn_executor(app, nodes[i % 4], 12.0, 8.0)
                .unwrap()
                .unwrap();
            eng.spawn_executor(app, nodes[(i + 1) % 4], 12.0, 8.0)
                .unwrap()
                .unwrap();
        }
        // Drive the scheduler's advance-to-completion loop, checking the
        // tree against the oracle before every step.
        for _ in 0..64 {
            let fast = eng.next_completion();
            let slow = eng.next_completion_naive();
            match (fast, slow) {
                (Some((df, wf)), Some((ds, ws))) => {
                    assert_eq!(wf, ws, "winner identity");
                    assert_eq!(df.to_bits(), ds.to_bits(), "winner delay");
                    eng.advance(df);
                    eng.complete_executor(wf).unwrap();
                }
                (f, s) => {
                    assert_eq!(f.map(|(_, w)| w), s.map(|(_, w)| w));
                    break;
                }
            }
        }
        assert_eq!(eng.live_executors(), 0);
    }

    #[test]
    fn elapsed_accumulates_advances() {
        let mut eng = engine(1);
        assert_eq!(eng.elapsed_secs(), 0.0);
        let app = eng.submit(linear_app("a", 10.0, 0.3));
        let node = eng.cluster().node_ids()[0];
        eng.spawn_executor(app, node, 10.0, 6.0).unwrap().unwrap();
        eng.advance(2.5);
        eng.advance(1.5);
        assert_eq!(eng.elapsed_secs(), 4.0);
    }
}
