//! The processor-sharing progress engine.
//!
//! [`ClusterEngine`] owns the cluster state, the submitted applications and
//! the live executors. It does **not** own the clock or make placement
//! decisions: a driver loop (the `colocate` harness) alternates between
//!
//! 1. asking the engine for the time of the next executor completion
//!    ([`ClusterEngine::next_completion`]),
//! 2. advancing progress to that instant ([`ClusterEngine::advance`]), and
//! 3. reacting — completing executors, spawning new ones per its policy.
//!
//! Rates are recomputed lazily from the current placement, so any change
//! (spawn, completion, kill) is reflected in the very next query. This is
//! the standard piecewise-constant-rate simulation of processor sharing.
//!
//! Internally the engine memoizes the rate vector between queries: every
//! placement mutation (and every `advance`, since actual footprints ramp
//! with progress) invalidates the cache, and the next query recomputes it
//! with exactly the arithmetic [`ClusterEngine::current_rates`] performs —
//! same per-node grouping, same executor-id order, same float operations —
//! so caching never changes a single output bit (DESIGN.md §11).

use crate::app::{AppId, AppSpec, AppState};
use crate::cluster::{Cluster, ClusterSpec, NodeId};
use crate::executor::{Executor, ExecutorId};
use crate::perf::{ExecutorDemand, InterferenceModel, MemoryPressure};
use crate::SparkliteError;
use simkit::SimRng;
use std::collections::BTreeMap;

/// Incrementally maintained executor rates.
///
/// `rates` holds `(id, GB/s)` pairs parallel to `executors.values()`
/// (both in executor-id order). It is refreshed lazily on the first query
/// after an invalidation, re-running exactly the arithmetic
/// [`ClusterEngine::current_rates`] performs so cached and from-scratch
/// values are bit-identical. The remaining vectors are scratch buffers
/// reused across refreshes, keeping the hot path allocation-free once
/// they reach steady-state capacity.
#[derive(Debug, Default)]
struct RateCache {
    valid: bool,
    rates: Vec<(ExecutorId, f64)>,
    /// Scratch: per-executor node index, parallel to `rates`.
    exec_nodes: Vec<usize>,
    /// Scratch: per-executor demand, parallel to `rates`.
    exec_demands: Vec<ExecutorDemand>,
    /// Scratch: executor positions grouped by node (counting sort).
    grouped: Vec<usize>,
    /// Scratch: counting-sort offsets, one per node plus a leading slot.
    cursors: Vec<usize>,
    /// Scratch: one node's demands, in executor-id order.
    node_demands: Vec<ExecutorDemand>,
    /// Scratch: one node's rate multipliers.
    multipliers: Vec<f64>,
}

/// The cluster simulation engine.
///
/// See the crate-level documentation for an end-to-end example.
#[derive(Debug)]
pub struct ClusterEngine {
    cluster: Cluster,
    model: InterferenceModel,
    apps: Vec<AppState>,
    /// Live executors, ordered by id (spawn order) for deterministic
    /// iteration.
    executors: BTreeMap<ExecutorId, Executor>,
    next_executor: usize,
    rng: SimRng,
    /// Fixed per-executor startup latency (JVM launch, container
    /// allocation, task scheduling), charged as dead work at the
    /// executor's nominal rate. Zero by default.
    startup_secs: f64,
    rate_cache: RateCache,
}

impl ClusterEngine {
    /// Creates an engine over a fresh cluster with a default RNG seed.
    #[must_use]
    pub fn new(spec: ClusterSpec, model: InterferenceModel) -> Self {
        Self::with_seed(spec, model, 0)
    }

    /// Creates an engine with an explicit seed for footprint-noise draws.
    #[must_use]
    pub fn with_seed(spec: ClusterSpec, model: InterferenceModel, seed: u64) -> Self {
        ClusterEngine {
            cluster: Cluster::new(spec),
            model,
            apps: Vec::new(),
            executors: BTreeMap::new(),
            next_executor: 0,
            rng: SimRng::seed_from(seed),
            startup_secs: 0.0,
            rate_cache: RateCache::default(),
        }
    }

    /// Sets the fixed startup latency charged to every newly spawned
    /// executor (seconds of dead work at the executor's nominal rate).
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite values.
    pub fn set_executor_startup_secs(&mut self, secs: f64) {
        assert!(secs.is_finite() && secs >= 0.0);
        self.startup_secs = secs;
    }

    /// The configured per-executor startup latency (s).
    #[must_use]
    pub fn executor_startup_secs(&self) -> f64 {
        self.startup_secs
    }

    /// The cluster.
    #[must_use]
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The interference model in use.
    #[must_use]
    pub fn interference_model(&self) -> InterferenceModel {
        self.model
    }

    /// Submits an application; it starts with its whole input unassigned.
    pub fn submit(&mut self, spec: AppSpec) -> AppId {
        self.apps.push(AppState::new(spec));
        AppId(self.apps.len() - 1)
    }

    /// Borrow an application's state.
    ///
    /// # Panics
    ///
    /// Panics on an id from another engine.
    #[must_use]
    pub fn app(&self, id: AppId) -> &AppState {
        &self.apps[id.0]
    }

    /// Number of submitted applications.
    #[must_use]
    pub fn app_count(&self) -> usize {
        self.apps.len()
    }

    /// Iterates over `(id, state)` for all submitted applications.
    pub fn apps(&self) -> impl Iterator<Item = (AppId, &AppState)> {
        self.apps.iter().enumerate().map(|(i, a)| (AppId(i), a))
    }

    /// Whether every submitted application has finished.
    #[must_use]
    pub fn all_finished(&self) -> bool {
        self.apps.iter().all(AppState::is_finished)
    }

    /// Borrow a live executor.
    ///
    /// # Errors
    ///
    /// Returns [`SparkliteError::UnknownExecutor`] if it finished or never
    /// existed.
    pub fn executor(&self, id: ExecutorId) -> Result<&Executor, SparkliteError> {
        self.executors
            .get(&id)
            .ok_or(SparkliteError::UnknownExecutor(id.0))
    }

    /// Ids of live executors on `node`, in spawn order.
    ///
    /// Allocates; hot paths that only iterate should prefer
    /// [`ClusterEngine::node_executors_iter`].
    #[must_use]
    pub fn node_executors(&self, node: NodeId) -> Vec<ExecutorId> {
        self.node_executors_iter(node).collect()
    }

    /// Iterates ids of live executors on `node`, in spawn order, without
    /// allocating.
    pub fn node_executors_iter(&self, node: NodeId) -> impl Iterator<Item = ExecutorId> + '_ {
        self.executors_on(node).map(Executor::id)
    }

    /// Iterates live executors on `node`, in spawn order.
    pub fn executors_on(&self, node: NodeId) -> impl Iterator<Item = &Executor> {
        self.executors.values().filter(move |e| e.node() == node)
    }

    /// Number of live executors on `node`.
    #[must_use]
    pub fn node_executor_count(&self, node: NodeId) -> usize {
        self.executors_on(node).count()
    }

    /// Iterates all live executors cluster-wide, in spawn (id) order.
    pub fn executors_iter(&self) -> impl Iterator<Item = &Executor> {
        self.executors.values()
    }

    /// Number of live executors cluster-wide.
    #[must_use]
    pub fn live_executors(&self) -> usize {
        self.executors.len()
    }

    /// A noisy footprint measurement for a profiling run on `slice_gb` of
    /// `app`'s input — what `vmstat` would report for the executor (§4.1).
    pub fn measure_footprint(&mut self, app: AppId, slice_gb: f64) -> f64 {
        let spec = self.apps[app.0].spec();
        let noise = self.rng.relative_noise(spec.footprint_noise_sd);
        spec.true_footprint_gb(slice_gb) * noise
    }

    /// Credits profiling work toward an application's output (§2.3: "no
    /// computing cycle is wasted on profiling").
    pub fn credit_profiled(&mut self, app: AppId, gb: f64) {
        self.apps[app.0].credit_profiled(gb);
    }

    /// Spawns an executor for `app` on `node`:
    ///
    /// * takes up to `slice_gb` of the app's unassigned input (clamped to
    ///   what remains; `Ok(None)` if nothing remains);
    /// * reserves `reserve_gb` of the node's memory (the *predicted*
    ///   footprint the scheduler budgeted);
    /// * draws the *actual* footprint from the app's ground-truth curve
    ///   plus measurement noise.
    ///
    /// The caller should check [`ClusterEngine::memory_pressure`] afterwards
    /// and resolve any [`MemoryPressure::OutOfMemory`] with
    /// [`ClusterEngine::kill_executor`].
    ///
    /// # Errors
    ///
    /// Returns [`SparkliteError::UnknownNode`] / [`SparkliteError::UnknownApp`]
    /// for bad ids, [`SparkliteError::InvalidState`] for a finished app and
    /// [`SparkliteError::Resource`] when the reservation does not fit (the
    /// app's input is left untouched in that case).
    pub fn spawn_executor(
        &mut self,
        app: AppId,
        node: NodeId,
        slice_gb: f64,
        reserve_gb: f64,
    ) -> Result<Option<ExecutorId>, SparkliteError> {
        if !self.cluster.contains(node) {
            return Err(SparkliteError::UnknownNode(node.index()));
        }
        if !self.cluster.node(node).is_online() {
            return Err(SparkliteError::NodeOffline(node.index()));
        }
        let state = self
            .apps
            .get_mut(app.0)
            .ok_or(SparkliteError::UnknownApp(app.0))?;
        if state.is_finished() {
            return Err(SparkliteError::InvalidState(format!(
                "{app} already finished"
            )));
        }
        // Reserve memory first so failure leaves the app untouched.
        self.cluster.node_mut(node).reserve(reserve_gb)?;
        let taken = self.apps[app.0].take_input(slice_gb);
        if taken <= 1e-12 {
            self.cluster.node_mut(node).release(reserve_gb)?;
            return Ok(None);
        }
        let spec = self.apps[app.0].spec();
        let noise = self.rng.relative_noise(spec.footprint_noise_sd);
        let actual = spec.true_footprint_gb(taken) * noise;
        let cpu = spec.cpu_util;
        let id = ExecutorId(self.next_executor);
        self.next_executor += 1;
        self.executors.insert(
            id,
            Executor::new(
                id,
                app,
                node,
                taken,
                reserve_gb,
                actual,
                cpu,
                self.startup_secs * spec.rate_gb_per_s,
            ),
        );
        self.rate_cache.valid = false;
        Ok(Some(id))
    }

    /// Extends a live executor's slice with more of its application's
    /// unassigned input — §4.3's "the number of data items to give to the
    /// co-located executor is dynamically adjusted over time". The
    /// executor's reservation grows by `extra_reserve_gb` and its actual
    /// footprint is re-drawn for the larger slice. Returns the GB actually
    /// added (0 when the app has nothing left).
    ///
    /// # Errors
    ///
    /// Returns [`SparkliteError::UnknownExecutor`] for dead ids and
    /// [`SparkliteError::Resource`] if the extra reservation does not fit
    /// (the executor is left unchanged).
    pub fn extend_executor(
        &mut self,
        id: ExecutorId,
        extra_gb: f64,
        extra_reserve_gb: f64,
    ) -> Result<f64, SparkliteError> {
        let exec = self
            .executors
            .get_mut(&id)
            .ok_or(SparkliteError::UnknownExecutor(id.0))?;
        let (app, node) = (exec.app(), exec.node());
        if !self.cluster.node(node).is_online() {
            return Err(SparkliteError::NodeOffline(node.index()));
        }
        self.cluster.node_mut(node).reserve(extra_reserve_gb)?;
        let taken = self.apps[app.0].take_input_for_extension(extra_gb);
        if taken <= 1e-12 {
            self.cluster.node_mut(node).release(extra_reserve_gb)?;
            return Ok(0.0);
        }
        let spec = self.apps[app.0].spec();
        let noise = self.rng.relative_noise(spec.footprint_noise_sd);
        let new_slice = exec.slice_gb() + taken;
        let new_actual = spec.true_footprint_gb(new_slice) * noise;
        exec.extend(taken, extra_reserve_gb, new_actual);
        self.rate_cache.valid = false;
        Ok(taken)
    }

    /// The memory pressure on `node` given the executors' *current*
    /// occupancy (which ramps with progress — see
    /// [`Executor::current_actual_gb`]).
    #[must_use]
    pub fn memory_pressure(&self, node: NodeId) -> MemoryPressure {
        let total: f64 = self
            .executors
            .values()
            .filter(|e| e.node() == node)
            .map(Executor::current_actual_gb)
            .sum();
        let spec = self.cluster.node(node).spec();
        self.model.memory_pressure(total, spec.ram_gb, spec.swap_gb)
    }

    /// The youngest executor on `node` — the conventional OOM-kill victim.
    ///
    /// "Youngest" means the highest [`ExecutorId`]: ids are assigned in
    /// strictly increasing spawn order, so when two executors were spawned
    /// at the same simulated timestamp the one whose `spawn_executor` call
    /// came later (larger id) is the victim. This id-order tie-break is
    /// deterministic and mirrors the Linux OOM killer's bias toward the
    /// most recently started process.
    #[must_use]
    pub fn oom_victim(&self, node: NodeId) -> Option<ExecutorId> {
        self.node_executors_iter(node).max()
    }

    /// Kills a live executor: its **entire slice** returns to the app's
    /// unassigned pool (an OOM-killed JVM loses its in-memory progress and
    /// must re-run from scratch, §2.3) and its reservation is released.
    /// Returns the GB returned to the pool.
    ///
    /// # Errors
    ///
    /// Returns [`SparkliteError::UnknownExecutor`] for dead ids.
    pub fn kill_executor(&mut self, id: ExecutorId) -> Result<f64, SparkliteError> {
        let exec = self
            .executors
            .remove(&id)
            .ok_or(SparkliteError::UnknownExecutor(id.0))?;
        self.rate_cache.valid = false;
        self.apps[exec.app().0].abort_slice(0.0, exec.slice_gb());
        self.cluster
            .node_mut(exec.node())
            .release(exec.reserved_gb())?;
        Ok(exec.slice_gb())
    }

    /// Whether `node` is online (accepting spawns and extensions).
    ///
    /// # Panics
    ///
    /// Panics on an id from another cluster.
    #[must_use]
    pub fn node_online(&self, node: NodeId) -> bool {
        self.cluster.node(node).is_online()
    }

    /// Crashes a node: every live executor on it is killed — each slice
    /// returns in full to its application's unassigned pool, exactly like
    /// an OOM kill — the node's reservations drop to zero and the node
    /// goes offline (spawns and extensions are refused until
    /// [`ClusterEngine::restore_node`]). Returns the killed executors'
    /// `(owner, lost slice GB)` pairs in spawn order. Failing a node that
    /// is already offline is a no-op returning an empty list, so
    /// overlapping outages in a fault plan compose safely.
    ///
    /// # Errors
    ///
    /// Returns [`SparkliteError::UnknownNode`] for bad ids, and propagates
    /// reservation-accounting failures from the kills (which indicate
    /// engine bugs, not expected conditions).
    pub fn fail_node(&mut self, node: NodeId) -> Result<Vec<(AppId, f64)>, SparkliteError> {
        if !self.cluster.contains(node) {
            return Err(SparkliteError::UnknownNode(node.index()));
        }
        if !self.cluster.node(node).is_online() {
            return Ok(Vec::new());
        }
        let victims = self.node_executors(node);
        let mut lost = Vec::with_capacity(victims.len());
        for id in victims {
            let owner = self.executor(id)?.app();
            let slice = self.kill_executor(id)?;
            lost.push((owner, slice));
        }
        self.cluster.node_mut(node).set_online(false);
        self.rate_cache.valid = false;
        Ok(lost)
    }

    /// Brings a crashed node back online with empty memory. Restoring an
    /// online node is a no-op.
    ///
    /// # Errors
    ///
    /// Returns [`SparkliteError::UnknownNode`] for bad ids.
    pub fn restore_node(&mut self, node: NodeId) -> Result<(), SparkliteError> {
        if !self.cluster.contains(node) {
            return Err(SparkliteError::UnknownNode(node.index()));
        }
        self.cluster.node_mut(node).set_online(true);
        self.rate_cache.valid = false;
        Ok(())
    }

    /// Recomputes the rate cache if a mutation invalidated it.
    ///
    /// Executors are grouped by node with a counting sort — one O(E + N)
    /// pass instead of a per-node filter scan — and within each node the
    /// grouped positions stay in executor-id order (stable placement over
    /// an id-ordered iteration). Nodes are then visited in index order, so
    /// every demand vector, multiplier call and `nominal * multiplier`
    /// product happens with exactly the operands and order of
    /// [`ClusterEngine::current_rates`]: the cache is bit-identical to a
    /// from-scratch recomputation.
    fn refresh_rates(&mut self) {
        if self.rate_cache.valid {
            return;
        }
        let apps = &self.apps;
        let executors = &self.executors;
        let cluster = &self.cluster;
        let model = &self.model;
        let cache = &mut self.rate_cache;

        cache.rates.clear();
        cache.exec_nodes.clear();
        cache.exec_demands.clear();
        for e in executors.values() {
            cache
                .rates
                .push((e.id(), apps[e.app().0].spec().rate_gb_per_s));
            cache.exec_nodes.push(e.node().index());
            cache.exec_demands.push(ExecutorDemand {
                cpu_util: e.cpu_util(),
                actual_gb: e.current_actual_gb(),
            });
        }

        let n = cluster.len();
        cache.cursors.clear();
        cache.cursors.resize(n + 1, 0);
        for &node in &cache.exec_nodes {
            cache.cursors[node + 1] += 1;
        }
        for i in 0..n {
            cache.cursors[i + 1] += cache.cursors[i];
        }
        cache.grouped.clear();
        cache.grouped.resize(cache.exec_nodes.len(), 0);
        for (pos, &node) in cache.exec_nodes.iter().enumerate() {
            cache.grouped[cache.cursors[node]] = pos;
            cache.cursors[node] += 1;
        }

        // After placement, `cursors[i]` is the end of node i's range.
        let mut start = 0;
        for node_idx in 0..n {
            let end = cache.cursors[node_idx];
            if end > start {
                cache.node_demands.clear();
                cache.node_demands.extend(
                    cache.grouped[start..end]
                        .iter()
                        .map(|&p| cache.exec_demands[p]),
                );
                let ram = cluster.node(NodeId(node_idx)).spec().ram_gb;
                model.rate_multipliers_into(&cache.node_demands, ram, &mut cache.multipliers);
                // `rates` holds the nominal rate; multiplying in place is
                // the same `nominal * mult` product `current_rates` forms.
                for (&pos, &mult) in cache.grouped[start..end].iter().zip(&cache.multipliers) {
                    cache.rates[pos].1 *= mult;
                }
            }
            start = end;
        }
        cache.valid = true;
    }

    /// Effective rates under the current placement served from the
    /// engine's incremental cache, as `(executor id, GB/s)` pairs in id
    /// order. Refreshes the cache if a mutation invalidated it;
    /// bit-identical to [`ClusterEngine::current_rates`].
    pub fn cached_current_rates(&mut self) -> &[(ExecutorId, f64)] {
        self.refresh_rates();
        &self.rate_cache.rates
    }

    /// Effective processing rate (GB/s) of each live executor under the
    /// current placement, keyed by executor id.
    ///
    /// Always recomputes from scratch and allocates the map; this is the
    /// reference implementation the rate cache is checked against. Hot
    /// paths use [`ClusterEngine::cached_current_rates`] instead.
    #[must_use]
    pub fn current_rates(&self) -> BTreeMap<ExecutorId, f64> {
        let mut rates = BTreeMap::new();
        for node in self.cluster.node_ids() {
            let execs: Vec<&Executor> = self
                .executors
                .values()
                .filter(|e| e.node() == node)
                .collect();
            if execs.is_empty() {
                continue;
            }
            let demands: Vec<ExecutorDemand> = execs
                .iter()
                .map(|e| ExecutorDemand {
                    cpu_util: e.cpu_util(),
                    actual_gb: e.current_actual_gb(),
                })
                .collect();
            let multipliers = self
                .model
                .rate_multipliers(&demands, self.cluster.node(node).spec().ram_gb);
            for (e, mult) in execs.iter().zip(multipliers) {
                let nominal = self.apps[e.app().0].spec().rate_gb_per_s;
                rates.insert(e.id(), nominal * mult);
            }
        }
        rates
    }

    /// Time until the next executor finishes its slice at current rates,
    /// together with the finisher (earliest; ties broken by id). `None`
    /// when no executors are live.
    ///
    /// Takes `&mut self` only to refresh the rate cache; the simulation
    /// state is otherwise untouched.
    pub fn next_completion(&mut self) -> Option<(f64, ExecutorId)> {
        self.refresh_rates();
        self.executors
            .values()
            .zip(&self.rate_cache.rates)
            .map(|(e, &(_, r))| {
                let rate = r.max(1e-12);
                (e.remaining_work_gb() / rate, e.id())
            })
            // Times are finite (rates are clamped away from zero), so the
            // partial order is total here; `Equal` would only ever keep
            // the fold's current candidate.
            .min_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// Advances every live executor by `dt` seconds at current rates.
    ///
    /// # Panics
    ///
    /// Panics on negative `dt`.
    pub fn advance(&mut self, dt: f64) {
        assert!(dt >= 0.0, "cannot advance by negative time");
        if dt == 0.0 {
            return;
        }
        self.refresh_rates();
        debug_assert_eq!(self.rate_cache.rates.len(), self.executors.len());
        for (exec, &(_, rate)) in self.executors.values_mut().zip(&self.rate_cache.rates) {
            exec.advance(rate * dt);
        }
        // Actual footprints ramp with progress, so the rates are stale
        // the moment time passes.
        self.rate_cache.valid = false;
    }

    /// Completes an executor whose slice is done: releases its reservation
    /// and credits the slice to the application.
    ///
    /// # Errors
    ///
    /// Returns [`SparkliteError::UnknownExecutor`] for dead ids and
    /// [`SparkliteError::InvalidState`] if the slice is not finished yet.
    pub fn complete_executor(&mut self, id: ExecutorId) -> Result<(), SparkliteError> {
        let exec = self
            .executors
            .get(&id)
            .ok_or(SparkliteError::UnknownExecutor(id.0))?;
        if !exec.is_done() {
            return Err(SparkliteError::InvalidState(format!(
                "{id} still has {:.3} GB remaining",
                exec.remaining_gb()
            )));
        }
        let Some(exec) = self.executors.remove(&id) else {
            return Err(SparkliteError::UnknownExecutor(id.0));
        };
        self.rate_cache.valid = false;
        self.apps[exec.app().0].finish_slice(exec.slice_gb());
        self.cluster
            .node_mut(exec.node())
            .release(exec.reserved_gb())?;
        Ok(())
    }

    /// Instantaneous CPU load of `node` as a fraction in `[0, 1]`: the sum
    /// of executor demands, capped at capacity. This is what the resource
    /// monitor daemon reports (§4.2) and what Fig. 7 plots.
    #[must_use]
    pub fn node_cpu_load(&self, node: NodeId) -> f64 {
        let total: f64 = self
            .executors
            .values()
            .filter(|e| e.node() == node)
            .map(Executor::cpu_util)
            .sum();
        total.min(1.0)
    }

    /// Free memory (GB) on `node` by scheduler reservations.
    #[must_use]
    pub fn node_free_memory(&self, node: NodeId) -> f64 {
        self.cluster.node(node).free_memory_gb()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlkit::regression::{CurveFamily, FittedCurve};

    fn linear_app(name: &str, input: f64, cpu: f64) -> AppSpec {
        AppSpec {
            name: name.into(),
            input_gb: input,
            rate_gb_per_s: 1.0,
            cpu_util: cpu,
            memory_curve: FittedCurve {
                family: CurveFamily::Linear,
                m: 0.5,
                b: 1.0,
            },
            footprint_noise_sd: 0.0,
        }
    }

    fn engine(nodes: usize) -> ClusterEngine {
        ClusterEngine::new(ClusterSpec::small(nodes), InterferenceModel::default())
    }

    #[test]
    fn solo_executor_finishes_in_nominal_time() {
        let mut eng = engine(1);
        let app = eng.submit(linear_app("a", 10.0, 0.3));
        let node = eng.cluster().node_ids()[0];
        let id = eng.spawn_executor(app, node, 10.0, 6.0).unwrap().unwrap();
        let (dt, who) = eng.next_completion().unwrap();
        assert_eq!(who, id);
        assert!((dt - 10.0).abs() < 1e-9, "dt = {dt}");
        eng.advance(dt);
        eng.complete_executor(id).unwrap();
        assert!(eng.app(app).is_finished());
        assert_eq!(eng.node_free_memory(node), 64.0);
    }

    #[test]
    fn co_located_executors_slow_each_other_mildly() {
        let mut eng = engine(1);
        let a = eng.submit(linear_app("a", 10.0, 0.35));
        let b = eng.submit(linear_app("b", 10.0, 0.40));
        let node = eng.cluster().node_ids()[0];
        eng.spawn_executor(a, node, 10.0, 6.0).unwrap().unwrap();
        eng.spawn_executor(b, node, 10.0, 6.0).unwrap().unwrap();
        let (dt, _) = eng.next_completion().unwrap();
        // Both slowed by < 10 % relative to the 10 s solo time.
        assert!(dt > 10.0 && dt < 11.0, "dt = {dt}");
    }

    #[test]
    fn slice_clamped_to_remaining_input() {
        let mut eng = engine(1);
        let app = eng.submit(linear_app("a", 5.0, 0.3));
        let node = eng.cluster().node_ids()[0];
        let id = eng.spawn_executor(app, node, 100.0, 10.0).unwrap().unwrap();
        assert_eq!(eng.executor(id).unwrap().slice_gb(), 5.0);
        assert_eq!(eng.app(app).unassigned_gb(), 0.0);
        // Nothing left: next spawn returns None and releases memory.
        let none = eng.spawn_executor(app, node, 10.0, 10.0).unwrap();
        assert!(none.is_none());
        assert_eq!(eng.node_free_memory(node), 64.0 - 10.0);
    }

    #[test]
    fn reservation_failure_leaves_app_untouched() {
        let mut eng = engine(1);
        let app = eng.submit(linear_app("a", 10.0, 0.3));
        let node = eng.cluster().node_ids()[0];
        let err = eng.spawn_executor(app, node, 10.0, 100.0);
        assert!(matches!(err, Err(SparkliteError::Resource(_))));
        assert_eq!(eng.app(app).unassigned_gb(), 10.0);
        assert_eq!(eng.live_executors(), 0);
    }

    #[test]
    fn oom_detection_and_kill() {
        let mut eng = engine(1);
        // Each executor actually needs 45 GB: two fit in RAM+swap only
        // via paging... actually 90 > 64+16, so OOM.
        let big = AppSpec {
            memory_curve: FittedCurve {
                family: CurveFamily::Linear,
                m: 0.0,
                b: 45.0,
            },
            ..linear_app("big", 100.0, 0.3)
        };
        let a = eng.submit(big.clone());
        let b = eng.submit(big);
        let node = eng.cluster().node_ids()[0];
        // Scheduler under-predicts: reserves only 20 GB each. At launch
        // both fit (memory ramps with progress)...
        eng.spawn_executor(a, node, 50.0, 20.0).unwrap().unwrap();
        let second = eng.spawn_executor(b, node, 50.0, 20.0).unwrap().unwrap();
        assert!(!matches!(
            eng.memory_pressure(node),
            MemoryPressure::OutOfMemory
        ));
        // ...but as the executors cache their slices the combined 90 GB
        // working set blows past RAM + swap mid-run.
        if let Some((dt, _)) = eng.next_completion() {
            eng.advance(dt * 0.9);
        }
        assert_eq!(eng.memory_pressure(node), MemoryPressure::OutOfMemory);
        let victim = eng.oom_victim(node).unwrap();
        assert_eq!(victim, second, "youngest executor is the victim");
        let returned = eng.kill_executor(victim).unwrap();
        assert_eq!(returned, 50.0, "the whole slice re-runs: progress is lost");
        assert_eq!(eng.app(b).unassigned_gb(), 100.0);
        assert!(!matches!(
            eng.memory_pressure(node),
            MemoryPressure::OutOfMemory
        ));
    }

    #[test]
    fn oom_victim_tie_break_is_executor_id_order() {
        // Two executors spawned at the same simulated timestamp (no
        // advance between the calls): the victim must be the one spawned
        // by the LATER call — the larger ExecutorId — pinning the
        // documented id-order tie-break.
        let mut eng = engine(1);
        let a = eng.submit(linear_app("a", 20.0, 0.3));
        let b = eng.submit(linear_app("b", 20.0, 0.3));
        let node = eng.cluster().node_ids()[0];
        let first = eng.spawn_executor(a, node, 10.0, 6.0).unwrap().unwrap();
        let second = eng.spawn_executor(b, node, 10.0, 6.0).unwrap().unwrap();
        assert!(second > first, "ids increase in spawn order");
        assert_eq!(eng.oom_victim(node), Some(second));
        // Kill the younger: the tie-break now selects the survivor.
        eng.kill_executor(second).unwrap();
        assert_eq!(eng.oom_victim(node), Some(first));
        eng.kill_executor(first).unwrap();
        assert_eq!(eng.oom_victim(node), None);
    }

    #[test]
    fn failed_node_refuses_work_and_returns_slices() {
        let mut eng = engine(2);
        let app = eng.submit(linear_app("a", 30.0, 0.3));
        let nodes = eng.cluster().node_ids();
        let id = eng
            .spawn_executor(app, nodes[0], 10.0, 6.0)
            .unwrap()
            .unwrap();
        eng.advance(5.0); // half the slice processed, then the node dies
        let lost = eng.fail_node(nodes[0]).unwrap();
        assert_eq!(lost, vec![(app, 10.0)], "whole slice is lost, like OOM");
        // Work conservation: the slice is back in the unassigned pool.
        assert_eq!(eng.app(app).unassigned_gb(), 30.0);
        assert_eq!(eng.app(app).processed_gb(), 0.0);
        assert_eq!(eng.live_executors(), 0);
        // Memory returned; node offline; spawns/extensions refused.
        assert_eq!(eng.node_free_memory(nodes[0]), 64.0);
        assert!(!eng.node_online(nodes[0]));
        assert!(eng.node_online(nodes[1]));
        assert!(matches!(
            eng.spawn_executor(app, nodes[0], 10.0, 6.0),
            Err(SparkliteError::NodeOffline(0))
        ));
        assert!(matches!(
            eng.executor(id),
            Err(SparkliteError::UnknownExecutor(_))
        ));
        // Double-fail is a harmless no-op; restore brings it back.
        assert!(eng.fail_node(nodes[0]).unwrap().is_empty());
        eng.restore_node(nodes[0]).unwrap();
        assert!(eng.node_online(nodes[0]));
        eng.spawn_executor(app, nodes[0], 10.0, 6.0)
            .unwrap()
            .unwrap();
    }

    #[test]
    fn node_lifecycle_error_paths() {
        // Failing a node never strands executors elsewhere, and bad node
        // ids surface as UnknownNode from both lifecycle calls.
        let mut eng = engine(2);
        let app = eng.submit(linear_app("a", 30.0, 0.3));
        let nodes = eng.cluster().node_ids();
        let id = eng
            .spawn_executor(app, nodes[0], 10.0, 6.0)
            .unwrap()
            .unwrap();
        // Fail the OTHER node: extension on the live node still works.
        eng.fail_node(nodes[1]).unwrap();
        assert_eq!(eng.extend_executor(id, 5.0, 3.0).unwrap(), 5.0);
        assert!(matches!(
            eng.fail_node(NodeId(9)),
            Err(SparkliteError::UnknownNode(9))
        ));
        assert!(matches!(
            eng.restore_node(NodeId(9)),
            Err(SparkliteError::UnknownNode(9))
        ));
    }

    #[test]
    fn paging_slows_execution() {
        let mut eng = engine(1);
        let heavy = AppSpec {
            memory_curve: FittedCurve {
                family: CurveFamily::Linear,
                m: 0.0,
                b: 78.0, // ramps to 14 GB over RAM, within swap
            },
            ..linear_app("heavy", 10.0, 0.3)
        };
        let app = eng.submit(heavy);
        let node = eng.cluster().node_ids()[0];
        eng.spawn_executor(app, node, 10.0, 60.0).unwrap().unwrap();
        // Run to 90 % progress: the working set has ramped past RAM.
        eng.advance(9.0);
        assert!(matches!(
            eng.memory_pressure(node),
            MemoryPressure::Paging(_)
        ));
        let (dt, _) = eng.next_completion().unwrap();
        assert!(
            dt > 2.0,
            "the paging tail should far exceed the 1 s of remaining work: {dt}"
        );
    }

    #[test]
    fn completion_requires_done_slice() {
        let mut eng = engine(1);
        let app = eng.submit(linear_app("a", 10.0, 0.3));
        let node = eng.cluster().node_ids()[0];
        let id = eng.spawn_executor(app, node, 10.0, 6.0).unwrap().unwrap();
        assert!(matches!(
            eng.complete_executor(id),
            Err(SparkliteError::InvalidState(_))
        ));
        eng.advance(10.0);
        eng.complete_executor(id).unwrap();
    }

    #[test]
    fn profiling_credit_counts_toward_completion() {
        let mut eng = engine(1);
        let app = eng.submit(linear_app("a", 10.0, 0.3));
        eng.credit_profiled(app, 1.5);
        assert_eq!(eng.app(app).processed_gb(), 1.5);
        assert_eq!(eng.app(app).unassigned_gb(), 8.5);
    }

    #[test]
    fn measure_footprint_is_noisy_but_unbiased() {
        let mut eng = engine(1);
        let mut noisy = linear_app("a", 10.0, 0.3);
        noisy.footprint_noise_sd = 0.05;
        let app = eng.submit(noisy);
        let n = 500;
        let mean: f64 = (0..n)
            .map(|_| eng.measure_footprint(app, 10.0))
            .sum::<f64>()
            / n as f64;
        // truth = 0.5·10 + 1 = 6 GB.
        assert!((mean - 6.0).abs() < 0.1, "mean = {mean}");
    }

    #[test]
    fn cpu_load_caps_at_one() {
        let mut eng = engine(1);
        let node = eng.cluster().node_ids()[0];
        for _ in 0..4 {
            let app = eng.submit(linear_app("x", 10.0, 0.4));
            eng.spawn_executor(app, node, 10.0, 6.0).unwrap().unwrap();
        }
        assert_eq!(eng.node_cpu_load(node), 1.0);
        assert_eq!(eng.live_executors(), 4);
        assert_eq!(eng.node_executors(node).len(), 4);
    }

    #[test]
    fn spawn_on_finished_app_is_invalid() {
        let mut eng = engine(1);
        let app = eng.submit(linear_app("a", 1.0, 0.3));
        let node = eng.cluster().node_ids()[0];
        let id = eng.spawn_executor(app, node, 1.0, 2.0).unwrap().unwrap();
        eng.advance(1.0);
        eng.complete_executor(id).unwrap();
        assert!(matches!(
            eng.spawn_executor(app, node, 1.0, 2.0),
            Err(SparkliteError::InvalidState(_))
        ));
    }

    #[test]
    fn extension_grows_a_running_executor() {
        let mut eng = engine(1);
        let app = eng.submit(linear_app("a", 30.0, 0.3));
        let node = eng.cluster().node_ids()[0];
        let id = eng.spawn_executor(app, node, 10.0, 6.0).unwrap().unwrap();
        eng.advance(4.0);
        let added = eng.extend_executor(id, 10.0, 5.0).unwrap();
        assert_eq!(added, 10.0);
        let exec = eng.executor(id).unwrap();
        assert_eq!(exec.slice_gb(), 20.0);
        assert_eq!(exec.reserved_gb(), 11.0);
        assert_eq!(eng.app(app).unassigned_gb(), 10.0);
        // 16 GB of data remain on the extended executor.
        let (dt, _) = eng.next_completion().unwrap();
        assert!((dt - 16.0).abs() < 1e-9, "dt = {dt}");
        eng.advance(dt);
        eng.complete_executor(id).unwrap();
        assert_eq!(eng.app(app).processed_gb(), 20.0);
        assert_eq!(eng.node_free_memory(node), 64.0);
    }

    #[test]
    fn extension_fails_cleanly_without_memory() {
        let mut eng = engine(1);
        let app = eng.submit(linear_app("a", 30.0, 0.3));
        let node = eng.cluster().node_ids()[0];
        let id = eng.spawn_executor(app, node, 10.0, 60.0).unwrap().unwrap();
        let err = eng.extend_executor(id, 10.0, 10.0);
        assert!(matches!(err, Err(SparkliteError::Resource(_))));
        // Untouched on failure.
        assert_eq!(eng.executor(id).unwrap().slice_gb(), 10.0);
        assert_eq!(eng.app(app).unassigned_gb(), 20.0);
    }

    #[test]
    fn extension_of_drained_app_is_zero() {
        let mut eng = engine(1);
        let app = eng.submit(linear_app("a", 10.0, 0.3));
        let node = eng.cluster().node_ids()[0];
        let id = eng.spawn_executor(app, node, 10.0, 6.0).unwrap().unwrap();
        assert_eq!(eng.extend_executor(id, 5.0, 1.0).unwrap(), 0.0);
        assert_eq!(eng.node_free_memory(node), 58.0, "reservation rolled back");
    }

    #[test]
    fn all_finished_reflects_progress() {
        let mut eng = engine(1);
        assert!(eng.all_finished(), "vacuously true with no apps");
        let app = eng.submit(linear_app("a", 1.0, 0.3));
        assert!(!eng.all_finished());
        let node = eng.cluster().node_ids()[0];
        let id = eng.spawn_executor(app, node, 1.0, 2.0).unwrap().unwrap();
        eng.advance(1.0);
        eng.complete_executor(id).unwrap();
        assert!(eng.all_finished());
    }
}
