//! Property-based tests for the workload models.

use proptest::prelude::*;
use simkit::SimRng;
use workloads::mixes::MixScenario;
use workloads::{signatures, Catalog};

proptest! {
    /// Ground-truth footprints are non-negative and non-decreasing in the
    /// slice size for every benchmark (all three Table 1 families are
    /// monotone with positive coefficients).
    #[test]
    fn footprints_monotone(bench_idx in 0usize..44, a in 0.01f64..60.0, delta in 0.0f64..20.0) {
        let catalog = Catalog::paper();
        let bench = &catalog.all()[bench_idx];
        let f1 = bench.true_footprint_gb(a);
        let f2 = bench.true_footprint_gb(a + delta);
        prop_assert!(f1 >= 0.0);
        prop_assert!(f2 >= f1 - 1e-9, "{}: f({a}) = {f1} > f({}) = {f2}", bench.name(), a + delta);
    }

    /// Random mixes always reference valid benchmarks and have the
    /// requested size, for every scenario and seed.
    #[test]
    fn random_mixes_are_well_formed(scenario_idx in 0usize..10, seed in any::<u64>()) {
        let catalog = Catalog::paper();
        let scenario = MixScenario::TABLE3[scenario_idx];
        let mut rng = SimRng::seed_from(seed);
        let mix = scenario.random_mix(&catalog, &mut rng);
        prop_assert_eq!(mix.len(), scenario.apps);
        prop_assert!(mix.iter().all(|e| e.benchmark < catalog.len()));
        // Sizes are one of the three classes.
        prop_assert!(mix.iter().all(|e| [0.3, 30.0, 1000.0].contains(&e.size.gb())));
    }

    /// Observations never produce non-finite feature values.
    #[test]
    fn observations_are_finite(bench_idx in 0usize..44, seed in any::<u64>()) {
        let catalog = Catalog::paper();
        let bench = &catalog.all()[bench_idx];
        let mut rng = SimRng::seed_from(seed);
        let obs = signatures::observe_default(bench, &mut rng);
        prop_assert!(obs.as_slice().iter().all(|v| v.is_finite()));
    }

    /// The latent signature is independent of the observation RNG: two
    /// different observation streams share the same underlying signature.
    #[test]
    fn latent_signature_is_stable(bench_idx in 0usize..44, s1 in any::<u64>(), s2 in any::<u64>()) {
        let catalog = Catalog::paper();
        let bench = &catalog.all()[bench_idx];
        let a = signatures::signature_for(bench, signatures::DEFAULT_JITTER_SD);
        let b = signatures::signature_for(bench, signatures::DEFAULT_JITTER_SD);
        prop_assert_eq!(a, b);
        let _ = (s1, s2);
    }

    /// app_spec round-trips the benchmark's properties for any input size.
    #[test]
    fn app_specs_are_consistent(bench_idx in 0usize..44, input in 0.1f64..1000.0) {
        let catalog = Catalog::paper();
        let bench = &catalog.all()[bench_idx];
        let spec = bench.app_spec(input, 0.01);
        prop_assert_eq!(spec.input_gb, input);
        prop_assert_eq!(spec.cpu_util, bench.cpu_util());
        prop_assert_eq!(spec.memory_curve, bench.curve());
        prop_assert!((spec.true_footprint_gb(5.0) - bench.true_footprint_gb(5.0)).abs() < 1e-12);
    }
}
