//! Stage structures for the catalog benchmarks.
//!
//! The co-location experiments flatten applications to divisible loads
//! (the paper's §2.2 scope), but each real benchmark is a DAG of stages.
//! This module gives every catalog benchmark a representative stage
//! structure — suite-typical map/shuffle/reduce or iterative patterns —
//! usable with `sparklite::stages` for DAG-level studies and with
//! `moe_core::phases` for §3.4 phase modeling.

use crate::catalog::Benchmark;
use mlkit::regression::{CurveFamily, FittedCurve};
use sparklite::stages::{StageSpec, StagedApp};
use sparklite::SparkliteError;

/// The stage pattern a benchmark follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StagePattern {
    /// Scan-style: read → filter/aggregate (Grep, Scan, WordCount...).
    ScanAggregate,
    /// Sort-style: read → shuffle → write (Sort, TeraSort, Join...).
    ShuffleHeavy,
    /// Iterative ML/graph: read → N iterations → output (PageRank,
    /// Kmeans, regressions...).
    Iterative,
}

/// Picks the representative pattern for a benchmark from its
/// memory-function family (streaming/saturating workloads scan or
/// shuffle; logarithmic graph workloads and linear ML kernels iterate).
#[must_use]
pub fn pattern_for(bench: &Benchmark) -> StagePattern {
    match bench.family() {
        CurveFamily::Exponential => {
            if bench.base_name().to_ascii_lowercase().contains("sort")
                || bench.base_name().to_ascii_lowercase().contains("join")
            {
                StagePattern::ShuffleHeavy
            } else {
                StagePattern::ScanAggregate
            }
        }
        CurveFamily::NapierianLog | CurveFamily::Linear => StagePattern::Iterative,
    }
}

/// Builds the stage DAG of `bench` for an `input_gb`-sized run.
///
/// Stage data volumes follow the pattern: scans shrink the data (filter
/// selectivity), shuffles keep it, iterations reuse it. The per-stage
/// memory curves derive from the benchmark's overall curve — the heaviest
/// stage matches the flattened model, lighter stages scale it down — so
/// the flattened footprint stays the *peak* over stages, consistent with
/// how the co-location experiments budget memory.
///
/// # Errors
///
/// Propagates DAG-construction failures (none expected for these shapes).
pub fn staged_app(bench: &Benchmark, input_gb: f64) -> Result<StagedApp, SparkliteError> {
    let curve = bench.curve();
    let scaled = |factor: f64| FittedCurve {
        family: curve.family,
        m: curve.m * factor,
        b: curve.b * factor,
    };
    let stage = |name: &str, data: f64, cpu_mult: f64, mem_factor: f64| StageSpec {
        name: name.into(),
        data_gb: data,
        rate_gb_per_s: bench.rate_gb_per_s(),
        cpu_util: (bench.cpu_util() * cpu_mult).min(1.0),
        memory_curve: scaled(mem_factor),
    };
    match pattern_for(bench) {
        StagePattern::ScanAggregate => StagedApp::pipeline(
            bench.name(),
            vec![
                stage("scan", input_gb, 0.8, 1.0),
                stage("aggregate", input_gb * 0.2, 1.2, 0.5),
            ],
        ),
        StagePattern::ShuffleHeavy => StagedApp::pipeline(
            bench.name(),
            vec![
                stage("read", input_gb, 0.7, 0.6),
                stage("shuffle", input_gb, 1.2, 1.0),
                stage("write", input_gb * 0.9, 0.9, 0.4),
            ],
        ),
        StagePattern::Iterative => {
            // read → 3 iterations (each over the cached working set) →
            // output, as a chain.
            let mut stages = vec![stage("read", input_gb, 0.6, 0.7)];
            for i in 0..3 {
                stages.push(stage(&format!("iter{i}"), input_gb * 0.6, 1.1, 1.0));
            }
            stages.push(stage("output", input_gb * 0.1, 0.8, 0.3));
            StagedApp::pipeline(bench.name(), stages)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;

    #[test]
    fn every_benchmark_gets_a_valid_dag() {
        let catalog = Catalog::paper();
        for bench in catalog.all() {
            let app = staged_app(bench, 30.0).unwrap_or_else(|e| {
                panic!("{}: {e}", bench.name());
            });
            assert!(app.topological_order().is_some(), "{}", bench.name());
            assert!(app.stages().len() >= 2);
        }
    }

    #[test]
    fn patterns_match_families() {
        let catalog = Catalog::paper();
        assert_eq!(
            pattern_for(catalog.by_name("HB.Sort").unwrap()),
            StagePattern::ShuffleHeavy
        );
        assert_eq!(
            pattern_for(catalog.by_name("BDB.Grep").unwrap()),
            StagePattern::ScanAggregate
        );
        assert_eq!(
            pattern_for(catalog.by_name("HB.PageRank").unwrap()),
            StagePattern::Iterative
        );
        assert_eq!(
            pattern_for(catalog.by_name("SP.Kmeans").unwrap()),
            StagePattern::Iterative
        );
    }

    #[test]
    fn peak_stage_footprint_matches_flattened_model() {
        // The heaviest stage carries the benchmark's full curve, so the
        // peak across stages equals the flattened footprint the
        // co-location dispatcher budgets with.
        let catalog = Catalog::paper();
        for bench in catalog.all() {
            let app = staged_app(bench, 30.0).unwrap();
            let slice = 10.0;
            let peak = app.peak_stage_footprint_gb(slice);
            let flat = bench.true_footprint_gb(slice);
            assert!(
                (peak - flat).abs() < 1e-9,
                "{}: peak {peak} vs flat {flat}",
                bench.name()
            );
        }
    }

    #[test]
    fn iterative_apps_run_their_iterations() {
        use sparklite::cluster::ClusterSpec;
        use sparklite::engine::ClusterEngine;
        use sparklite::perf::InterferenceModel;
        use sparklite::stages::run_staged_isolated;

        let catalog = Catalog::paper();
        let bench = catalog.by_name("HB.PageRank").unwrap();
        let app = staged_app(bench, 2.0).unwrap();
        assert_eq!(app.stages().len(), 5, "read + 3 iterations + output");
        let mut engine = ClusterEngine::new(ClusterSpec::small(2), InterferenceModel::default());
        let nodes = engine.cluster().node_ids();
        let makespan = run_staged_isolated(&mut engine, &app, &nodes, 0.0).unwrap();
        assert!(makespan > 0.0);
        assert!(engine.all_finished());
    }
}
