//! Runtime scenarios: Table 3's task mixes, Table 4's fixed 30-app mix and
//! the random-mix generator of §5.2.

use crate::catalog::{Benchmark, Catalog};
use serde::{Deserialize, Serialize};
use simkit::SimRng;

/// Input-size classes used in the evaluation (§5.2: "The input size ranges
/// from small (∼300MB) and medium (∼30GB) to large (∼1TB)").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InputSize {
    /// ~300 MB.
    Small,
    /// ~30 GB.
    Medium,
    /// ~1 TB.
    Large,
}

impl InputSize {
    /// All classes.
    pub const ALL: [InputSize; 3] = [InputSize::Small, InputSize::Medium, InputSize::Large];

    /// Nominal size in GB.
    #[must_use]
    pub fn gb(self) -> f64 {
        match self {
            InputSize::Small => 0.3,
            InputSize::Medium => 30.0,
            InputSize::Large => 1000.0,
        }
    }

    /// Parses the notations used in Table 4 ("300MB", "30GB", "1TB").
    #[must_use]
    pub fn parse(text: &str) -> Option<InputSize> {
        match text {
            "300MB" => Some(InputSize::Small),
            "30GB" => Some(InputSize::Medium),
            "1TB" => Some(InputSize::Large),
            _ => None,
        }
    }
}

impl std::fmt::Display for InputSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InputSize::Small => f.write_str("300MB"),
            InputSize::Medium => f.write_str("30GB"),
            InputSize::Large => f.write_str("1TB"),
        }
    }
}

/// One application in a mix: a benchmark plus an input size.
#[derive(Debug, Clone, PartialEq)]
pub struct MixEntry {
    /// Catalog index of the benchmark.
    pub benchmark: usize,
    /// Input size class.
    pub size: InputSize,
}

/// A runtime scenario from Table 3: a label (L1..L10) and the number of
/// applications scheduled together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MixScenario {
    /// Scenario label, 1-based ("L3" has `label = 3`).
    pub label: usize,
    /// Number of applications in the mix.
    pub apps: usize,
}

impl MixScenario {
    /// The ten scenarios of Table 3.
    pub const TABLE3: [MixScenario; 10] = [
        MixScenario { label: 1, apps: 2 },
        MixScenario { label: 2, apps: 6 },
        MixScenario { label: 3, apps: 7 },
        MixScenario { label: 4, apps: 9 },
        MixScenario { label: 5, apps: 11 },
        MixScenario { label: 6, apps: 13 },
        MixScenario { label: 7, apps: 19 },
        MixScenario { label: 8, apps: 23 },
        MixScenario { label: 9, apps: 26 },
        MixScenario {
            label: 10,
            apps: 30,
        },
    ];

    /// Display label ("L7").
    #[must_use]
    pub fn name(self) -> String {
        format!("L{}", self.label)
    }

    /// Draws one random application mix for this scenario: benchmarks
    /// sampled without replacement where possible (with replacement once
    /// the catalog is exhausted), each with a random input size. Across
    /// many draws every benchmark appears (§5.2).
    #[must_use]
    pub fn random_mix(self, catalog: &Catalog, rng: &mut SimRng) -> Vec<MixEntry> {
        let n = catalog.len();
        let mut picks = Vec::with_capacity(self.apps);
        let mut remaining: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut remaining);
        for i in 0..self.apps {
            let benchmark = if let Some(idx) = remaining.pop() {
                idx
            } else {
                rng.uniform_usize(0, n - 1)
            };
            let size = *rng.choose(&InputSize::ALL);
            picks.push(MixEntry { benchmark, size });
            let _ = i;
        }
        picks
    }
}

/// The fixed 30-application mix of Table 4 (drives Figs. 7 and 8), in
/// submission order.
#[must_use]
pub fn table4_mix(catalog: &Catalog) -> Vec<MixEntry> {
    // (order, benchmark, input) — verbatim from Table 4.
    let rows: [(&str, &str); 30] = [
        ("BDB.Wordcount", "30GB"),
        ("SP.Kmeans", "1TB"),
        ("SP.glm-classification", "1TB"),
        ("SP.glm-regression", "1TB"),
        ("SP.Pca", "30GB"),
        ("SB.SVD++", "1TB"),
        ("HB.Scan", "30GB"),
        ("HB.TeraSort", "1TB"),
        ("SB.Hive", "1TB"),
        ("SP.NaiveBayes", "1TB"),
        ("BDB.PageRank", "1TB"),
        ("HB.PageRank", "30GB"),
        ("SP.DecisionTree", "30GB"),
        ("SP.Spearman", "1TB"),
        ("SB.MatrixFact", "1TB"),
        ("BDB.Grep", "1TB"),
        ("SB.LogRegre", "1TB"),
        ("BDB.NaivesBayes", "30GB"),
        ("BDB.Kmeans", "30GB"),
        ("HB.Sort", "1TB"),
        ("SP.CoreRDD", "300MB"),
        ("SP.Gmm", "1TB"),
        ("HB.Join", "1TB"),
        ("SP.Sum.Statis", "30GB"),
        ("SP.B.MatrixMult", "1TB"),
        ("BDB.Sort", "30GB"),
        ("SB.RDDRelation", "1TB"),
        ("SP.Pearson", "1TB"),
        ("SP.Chi-sq", "30GB"),
        ("HB.Kmeans", "1TB"),
    ];
    rows.iter()
        .map(|(name, size)| MixEntry {
            benchmark: catalog
                .by_name(name)
                .unwrap_or_else(|| panic!("Table 4 references unknown benchmark {name}"))
                .index(),
            size: InputSize::parse(size).expect("valid Table 4 size"),
        })
        .collect()
}

/// Resolves a mix entry to its benchmark.
#[must_use]
pub fn resolve<'a>(catalog: &'a Catalog, entry: &MixEntry) -> &'a Benchmark {
    &catalog.all()[entry.benchmark]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_matches_paper() {
        let apps: Vec<usize> = MixScenario::TABLE3.iter().map(|s| s.apps).collect();
        assert_eq!(apps, vec![2, 6, 7, 9, 11, 13, 19, 23, 26, 30]);
        assert_eq!(MixScenario::TABLE3[6].name(), "L7");
    }

    #[test]
    fn input_sizes_parse_and_print() {
        for size in InputSize::ALL {
            assert_eq!(InputSize::parse(&size.to_string()), Some(size));
        }
        assert_eq!(InputSize::parse("5GB"), None);
        assert_eq!(InputSize::Medium.gb(), 30.0);
    }

    #[test]
    fn table4_has_thirty_known_apps() {
        let catalog = Catalog::paper();
        let mix = table4_mix(&catalog);
        assert_eq!(mix.len(), 30);
        // Order 1 is BDB.Wordcount at 30 GB; order 20 is HB.Sort at 1 TB.
        assert_eq!(resolve(&catalog, &mix[0]).name(), "BDB.Wordcount");
        assert_eq!(mix[0].size, InputSize::Medium);
        assert_eq!(resolve(&catalog, &mix[19]).name(), "HB.Sort");
        assert_eq!(mix[19].size, InputSize::Large);
        // 30 distinct benchmarks.
        let set: std::collections::HashSet<usize> = mix.iter().map(|e| e.benchmark).collect();
        assert_eq!(set.len(), 30);
    }

    #[test]
    fn random_mix_has_requested_size_and_distinct_benchmarks() {
        let catalog = Catalog::paper();
        let mut rng = SimRng::seed_from(3);
        let mix = MixScenario::TABLE3[9].random_mix(&catalog, &mut rng);
        assert_eq!(mix.len(), 30);
        let set: std::collections::HashSet<usize> = mix.iter().map(|e| e.benchmark).collect();
        assert_eq!(set.len(), 30, "≤ 44 benchmarks: no replacement needed");
    }

    #[test]
    fn all_benchmarks_appear_across_many_mixes() {
        let catalog = Catalog::paper();
        let mut rng = SimRng::seed_from(11);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            for e in MixScenario::TABLE3[4].random_mix(&catalog, &mut rng) {
                seen.insert(e.benchmark);
            }
        }
        assert_eq!(seen.len(), catalog.len(), "coverage over ~100 mixes");
    }

    #[test]
    fn random_mixes_are_seed_deterministic() {
        let catalog = Catalog::paper();
        let a = MixScenario::TABLE3[2].random_mix(&catalog, &mut SimRng::seed_from(5));
        let b = MixScenario::TABLE3[2].random_mix(&catalog, &mut SimRng::seed_from(5));
        assert_eq!(a, b);
    }
}
