//! The 12 PARSEC 3.0 benchmarks used in the Fig. 15 interference study.
//!
//! PARSEC programs are shared-memory, computation-intensive C/C++
//! applications; the paper co-locates each with every Spark benchmark on a
//! single host and measures the PARSEC side's slowdown (< 30 %, mostly
//! < 20 %). The model here: a fixed amount of CPU-bound work with a high
//! CPU demand and a small, input-independent memory footprint.

use mlkit::regression::{CurveFamily, FittedCurve};
use serde::{Deserialize, Serialize};
use sparklite::app::AppSpec;

/// One modeled PARSEC benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParsecBenchmark {
    name: &'static str,
    /// CPU demand as a fraction of the node (PARSEC native runs use all
    /// cores, throttled only by its parallel efficiency).
    cpu_util: f64,
    /// Resident memory of the native input (GB).
    memory_gb: f64,
    /// Native-input runtime in isolation (s).
    solo_seconds: f64,
}

impl ParsecBenchmark {
    /// Benchmark name (lowercase, as in the suite).
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// CPU demand (fraction of a node).
    #[must_use]
    pub fn cpu_util(&self) -> f64 {
        self.cpu_util
    }

    /// Resident memory (GB).
    #[must_use]
    pub fn memory_gb(&self) -> f64 {
        self.memory_gb
    }

    /// Isolated runtime on the native input (s).
    #[must_use]
    pub fn solo_seconds(&self) -> f64 {
        self.solo_seconds
    }

    /// Models the PARSEC run as a sparklite app: a 1 GB-equivalent unit of
    /// work processed at a rate that yields `solo_seconds` in isolation,
    /// with a constant memory footprint.
    #[must_use]
    pub fn app_spec(&self) -> AppSpec {
        AppSpec {
            name: format!("parsec.{}", self.name),
            input_gb: 1.0,
            rate_gb_per_s: 1.0 / self.solo_seconds,
            cpu_util: self.cpu_util,
            memory_curve: FittedCurve {
                family: CurveFamily::Linear,
                m: 0.0,
                b: self.memory_gb,
            },
            footprint_noise_sd: 0.0,
        }
    }
}

/// The 12 PARSEC benchmarks of Fig. 15 with native-input characteristics.
#[must_use]
pub fn parsec_suite() -> Vec<ParsecBenchmark> {
    // (name, cpu_util, memory_gb, solo_seconds)
    let rows: [(&'static str, f64, f64, f64); 12] = [
        ("blackscholes", 0.88, 0.7, 250.0),
        ("bodytrack", 0.80, 0.4, 220.0),
        ("canneal", 0.55, 1.0, 300.0),
        ("facesim", 0.78, 0.9, 420.0),
        ("ferret", 0.85, 0.3, 340.0),
        ("fluidanimate", 0.82, 0.8, 380.0),
        ("freqmine", 0.90, 1.2, 400.0),
        ("raytrace", 0.75, 1.3, 360.0),
        ("streamcluster", 0.70, 0.2, 310.0),
        ("swaptions", 0.92, 0.1, 230.0),
        ("vips", 0.83, 0.5, 200.0),
        ("x264", 0.86, 0.6, 260.0),
    ];
    rows.iter()
        .map(
            |&(name, cpu_util, memory_gb, solo_seconds)| ParsecBenchmark {
                name,
                cpu_util,
                memory_gb,
                solo_seconds,
            },
        )
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_parsec_benchmarks() {
        let suite = parsec_suite();
        assert_eq!(suite.len(), 12);
        let names: std::collections::HashSet<&str> =
            suite.iter().map(ParsecBenchmark::name).collect();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn parsec_is_cpu_intensive_and_memory_light() {
        for b in parsec_suite() {
            assert!(b.cpu_util() >= 0.5, "{} is not CPU-bound", b.name());
            assert!(b.memory_gb() < 2.0, "{} uses too much RAM", b.name());
            assert!(b.solo_seconds() > 0.0);
        }
    }

    #[test]
    fn app_spec_runs_for_solo_seconds_alone() {
        let b = &parsec_suite()[0];
        let spec = b.app_spec();
        assert!((spec.uncontended_seconds(spec.input_gb) - b.solo_seconds()).abs() < 1e-9);
        assert_eq!(spec.true_footprint_gb(1.0), b.memory_gb());
        assert!(spec.name.starts_with("parsec."));
    }
}
