//! Synthetic runtime-feature signatures for the benchmark catalog.
//!
//! On the real testbed, the 22 Table 2 features are measured with `vmstat`,
//! `perf` and PAPI during a ~100 MB profiling run. Here each benchmark
//! carries a latent 22-dimensional signature, and a profiling run returns a
//! noisy observation of it.
//!
//! The signatures are generated with the structure the paper measures:
//! benchmarks using the same memory-function family form one tight cluster
//! in feature space (Fig. 16 — three clusters, Pearson correlation to the
//! cluster centre > 0.9999), with the top Table 2 features (L1 cache miss
//! rates, `vcache`, `bo`) carrying most of the separation (Fig. 4b).

use crate::catalog::Benchmark;
use mlkit::regression::CurveFamily;
use moe_core::features::{FeatureVector, RAW_FEATURE_COUNT};
use simkit::SimRng;

/// Relative per-benchmark deviation from the cluster centre (fraction of
/// each feature's cross-cluster range). Large enough that classifiers make
/// occasional mistakes near cluster boundaries (Table 5 accuracies are
/// 92–97 %, not 100 %).
pub const DEFAULT_JITTER_SD: f64 = 0.26;

/// Relative measurement noise of one profiling run (fraction of each
/// feature's cross-cluster range).
pub const DEFAULT_NOISE_SD: f64 = 0.09;

/// Per-feature base value and cross-family spread in raw units. The
/// magnitudes are typical of the underlying counters (cache miss rates in
/// fractions, `bo`/`cs`/`in` in events per second, FLOPs absolute).
const FEATURE_BASE_SPREAD: [(f64, f64); RAW_FEATURE_COUNT] = [
    (0.125, 0.09),    // L1_TCM
    (0.145, 0.10),    // L1_DCM
    (0.45, 0.22),     // vcache
    (0.085, 0.065),   // L1_STM
    (510.0, 380.0),   // bo
    (0.085, 0.055),   // L2_TCM
    (0.055, 0.042),   // L3_TCM
    (6000.0, 3400.0), // cs
    (1.4e9, 1.0e9),   // FLOPs
    (1600.0, 750.0),  // in
    (0.075, 0.050),   // L2_DCM
    (0.060, 0.047),   // L2_LDM
    (0.016, 0.012),   // L1_ICM
    (0.05, 0.035),    // swpd
    (0.050, 0.040),   // L2_STM
    (0.95, 0.45),     // IPC
    (0.120, 0.090),   // L1_LDM
    (0.014, 0.010),   // L2_ICM
    (0.53, 0.085),    // ID
    (0.08, 0.055),    // WA
    (0.34, 0.095),    // US
    (0.09, 0.035),    // SY
];

/// Cluster centre of a memory-function family in raw feature space
/// (Table 2 order).
///
/// The three centres lie approximately on one line through feature space —
/// streaming (exponential) ↔ iterative-graph (logarithmic) workloads at
/// the extremes, dense-numeric (linear) in between with a small orthogonal
/// offset. That near-rank-1 geometry is why one principal component
/// carries most of the variance (Fig. 4a) while a second separates the
/// third cluster (Fig. 16).
#[must_use]
pub fn family_center(family: CurveFamily) -> [f64; RAW_FEATURE_COUNT] {
    // Position along the main axis, plus the orthogonal offset pattern.
    let (t, wiggle) = match family {
        CurveFamily::NapierianLog => (1.0, 0.0),
        CurveFamily::Exponential => (0.15, 0.85),
        CurveFamily::Linear => (-1.0, 0.0),
    };
    let mut center = [0.0; RAW_FEATURE_COUNT];
    for (d, (base, spread)) in FEATURE_BASE_SPREAD.iter().enumerate() {
        // Alternating sign gives the orthogonal direction structure.
        let orth = if d % 2 == 0 { 1.0 } else { -1.0 };
        center[d] = base + spread * (t + wiggle * orth);
    }
    center
}

/// Per-feature scale used to size jitter and noise: the spread of the
/// three cluster centres for that feature.
#[must_use]
pub fn feature_scales() -> [f64; RAW_FEATURE_COUNT] {
    let centers = [
        family_center(CurveFamily::Exponential),
        family_center(CurveFamily::NapierianLog),
        family_center(CurveFamily::Linear),
    ];
    let mut scales = [0.0; RAW_FEATURE_COUNT];
    for (d, scale) in scales.iter_mut().enumerate() {
        let vals = [centers[0][d], centers[1][d], centers[2][d]];
        let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        *scale = (hi - lo).max(hi.abs() * 0.05).max(1e-9);
    }
    scales
}

/// Per-feature signal-to-noise weight: features early in Table 2's
/// importance order carry a clean cluster signal (small within-cluster
/// spread relative to the cross-cluster gap); late features are noisy.
/// This is what *makes* them important — Table 2's ordering and Fig. 4b's
/// contributions emerge from this gradient.
#[must_use]
pub fn feature_noise_weight(feature_index: usize) -> f64 {
    match feature_index {
        0..=4 => 0.35,  // L1_TCM, L1_DCM, vcache, L1_STM, bo: crisp signal
        5..=9 => 1.2,   // L2/L3 misses, cs, FLOPs, in: useful but noisier
        10..=15 => 2.2, // secondary counters
        _ => 3.5,       // OS timing fractions: barely informative
    }
}

/// The latent signature of one benchmark: its family's cluster centre plus
/// a deterministic per-benchmark offset (same benchmark → same signature,
/// across processes and runs).
#[must_use]
pub fn signature_for(bench: &Benchmark, jitter_sd: f64) -> FeatureVector {
    let center = family_center(bench.family());
    let scales = feature_scales();
    // A per-benchmark stream decoupled from everything else.
    let mut rng = SimRng::seed_from(SIG_SEED ^ (bench.index() as u64 + 1));
    FeatureVector::from_fn(|d| {
        center[d] + rng.normal(0.0, jitter_sd * feature_noise_weight(d) * scales[d])
    })
}

/// One noisy profiling observation of a benchmark's signature.
///
/// Low-signal features (late in Table 2's order — OS timing fractions,
/// secondary counters) receive heavy-tailed noise: occasional bursts, as
/// real `vmstat`-style counters exhibit. After min-max scaling the bursts
/// stretch the range and compress the bulk, which is why these features
/// contribute little variance (Fig. 4a) and rank low (Table 2).
#[must_use]
pub fn observe(
    bench: &Benchmark,
    rng: &mut SimRng,
    jitter_sd: f64,
    noise_sd: f64,
) -> FeatureVector {
    let latent = signature_for(bench, jitter_sd);
    let scales = feature_scales();
    FeatureVector::from_fn(|d| {
        let weight = feature_noise_weight(d);
        let sd = noise_sd * weight * scales[d];
        let mut noise = rng.normal(0.0, sd);
        if weight > 1.0 && rng.chance(0.05) {
            // A counter burst: several sigma, one-sided.
            noise += rng.uniform(4.0, 10.0) * sd;
        }
        latent.as_slice()[d] + noise
    })
}

/// Convenience: an observation with the default jitter/noise levels.
#[must_use]
pub fn observe_default(bench: &Benchmark, rng: &mut SimRng) -> FeatureVector {
    observe(bench, rng, DEFAULT_JITTER_SD, DEFAULT_NOISE_SD)
}

const SIG_SEED: u64 = 0x5169_5EED_F00D;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use mlkit::linalg::euclidean;

    #[test]
    fn signatures_are_deterministic() {
        let c = Catalog::paper();
        let b = c.by_name("HB.Sort").unwrap();
        let a = signature_for(b, DEFAULT_JITTER_SD);
        let b2 = signature_for(b, DEFAULT_JITTER_SD);
        assert_eq!(a, b2);
    }

    #[test]
    fn same_family_clusters_tighter_than_cross_family() {
        let c = Catalog::paper();
        let scales = feature_scales();
        // Normalised distance over the high-signal features (the cluster
        // structure lives there; late Table 2 features are mostly noise).
        let dist = |a: &FeatureVector, b: &FeatureVector| {
            let an: Vec<f64> = a.as_slice()[..5]
                .iter()
                .zip(scales.iter())
                .map(|(v, s)| v / s)
                .collect();
            let bn: Vec<f64> = b.as_slice()[..5]
                .iter()
                .zip(scales.iter())
                .map(|(v, s)| v / s)
                .collect();
            euclidean(&an, &bn)
        };
        let sigs: Vec<(CurveFamily, FeatureVector)> = c
            .all()
            .iter()
            .map(|b| (b.family(), signature_for(b, DEFAULT_JITTER_SD)))
            .collect();
        let mut intra = Vec::new();
        let mut inter = Vec::new();
        for i in 0..sigs.len() {
            for j in (i + 1)..sigs.len() {
                let d = dist(&sigs[i].1, &sigs[j].1);
                if sigs[i].0 == sigs[j].0 {
                    intra.push(d);
                } else {
                    inter.push(d);
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&intra) * 2.0 < mean(&inter),
            "clusters not separated: intra {} vs inter {}",
            mean(&intra),
            mean(&inter)
        );
    }

    #[test]
    fn observations_are_noisy_but_close() {
        let c = Catalog::paper();
        let b = c.by_name("BDB.Grep").unwrap();
        let latent = signature_for(b, DEFAULT_JITTER_SD);
        let mut rng = SimRng::seed_from(7);
        let obs = observe_default(b, &mut rng);
        assert_ne!(obs, latent, "noise should perturb the observation");
        let scales = feature_scales();
        for (d, ((o, l), s)) in obs
            .as_slice()
            .iter()
            .zip(latent.as_slice())
            .zip(scales.iter())
            .enumerate()
        {
            // Gaussian component within 4σ, plus head-room for the
            // one-sided counter burst (up to +10σ) that `observe` injects
            // on high-weight features — the bound must hold for any RNG
            // stream, not just a lucky seed.
            let burst = if feature_noise_weight(d) > 1.0 {
                10.0
            } else {
                0.0
            };
            assert!(
                (o - l).abs() <= (4.0 + burst) * DEFAULT_NOISE_SD * feature_noise_weight(d) * s,
                "observation strayed too far on feature {d}"
            );
        }
    }

    #[test]
    fn top_features_separate_families() {
        // The five most important Table 2 features must differ strongly
        // between cluster centres (that is what makes them important).
        let exp = family_center(CurveFamily::Exponential);
        let log = family_center(CurveFamily::NapierianLog);
        let lin = family_center(CurveFamily::Linear);
        for d in 0..5 {
            let spread = (exp[d] - log[d]).abs() + (log[d] - lin[d]).abs();
            assert!(spread > 0.0);
        }
    }

    #[test]
    fn scales_are_positive() {
        assert!(feature_scales().iter().all(|&s| s > 0.0));
    }
}
