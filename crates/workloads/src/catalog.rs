//! The 44-benchmark catalog (§5.1 "Workloads").
//!
//! Each entry models one of the paper's Spark benchmarks: its ground-truth
//! memory curve (family + coefficients), average CPU utilisation and
//! nominal per-executor throughput. Coefficients reported in the paper are
//! used verbatim (HB.Sort: exponential `m = 5.768, b = 4.479`;
//! HB.PageRank: logarithmic `m = 16.333, b = 1.79`, §3.1); the rest are
//! chosen so that footprints, Fig. 13's CPU-load histogram and Fig. 16's
//! three-cluster feature structure match the published shapes.

use mlkit::regression::{CurveFamily, FittedCurve};
use serde::{Deserialize, Serialize};
use sparklite::app::AppSpec;

/// The benchmark suite a workload comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// HiBench (prefix `HB.`).
    HiBench,
    /// BigDataBench (prefix `BDB.`).
    BigDataBench,
    /// Spark-Perf (prefix `SP.`).
    SparkPerf,
    /// Spark-Bench (prefix `SB.`).
    SparkBench,
}

impl Suite {
    /// The name prefix used throughout the paper's figures.
    #[must_use]
    pub fn prefix(self) -> &'static str {
        match self {
            Suite::HiBench => "HB",
            Suite::BigDataBench => "BDB",
            Suite::SparkPerf => "SP",
            Suite::SparkBench => "SB",
        }
    }
}

/// One modeled benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Benchmark {
    suite: Suite,
    base: &'static str,
    curve: FittedCurve,
    cpu_util: f64,
    rate_gb_per_s: f64,
    index: usize,
}

impl Benchmark {
    /// Suite this benchmark belongs to.
    #[must_use]
    pub fn suite(&self) -> Suite {
        self.suite
    }

    /// Base name without the suite prefix (e.g. `Sort`).
    #[must_use]
    pub fn base_name(&self) -> &'static str {
        self.base
    }

    /// Full display name (e.g. `HB.Sort`).
    #[must_use]
    pub fn name(&self) -> String {
        format!("{}.{}", self.suite.prefix(), self.base)
    }

    /// Ground-truth memory curve.
    #[must_use]
    pub fn curve(&self) -> FittedCurve {
        self.curve
    }

    /// The curve's family — the "correct" expert for this benchmark.
    #[must_use]
    pub fn family(&self) -> CurveFamily {
        self.curve.family
    }

    /// Average CPU utilisation of one executor (fraction of a node).
    #[must_use]
    pub fn cpu_util(&self) -> f64 {
        self.cpu_util
    }

    /// Nominal uncontended throughput of one executor (GB/s).
    #[must_use]
    pub fn rate_gb_per_s(&self) -> f64 {
        self.rate_gb_per_s
    }

    /// Stable index of this benchmark within the catalog.
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// Ground-truth footprint for an executor slice, GB.
    #[must_use]
    pub fn true_footprint_gb(&self, slice_gb: f64) -> f64 {
        self.curve.eval(slice_gb).max(0.0)
    }

    /// Builds the sparklite [`AppSpec`] for a run over `input_gb` of data
    /// with the given footprint measurement noise.
    #[must_use]
    pub fn app_spec(&self, input_gb: f64, footprint_noise_sd: f64) -> AppSpec {
        AppSpec {
            name: self.name(),
            input_gb,
            rate_gb_per_s: self.rate_gb_per_s,
            cpu_util: self.cpu_util,
            memory_curve: self.curve,
            footprint_noise_sd,
        }
    }

    /// A key identifying "equivalent implementations" across suites —
    /// e.g. `HB.Sort` and `BDB.Sort` share the key `sort`. The paper
    /// excludes equivalents from the training set during cross-validation
    /// (§5.2).
    #[must_use]
    pub fn equivalence_key(&self) -> String {
        let lower = self.base.to_ascii_lowercase();
        // Normalise naming variants used across suites.
        let key = match lower.as_str() {
            "wordcount" => "wordcount",
            "naivesbayes" | "naivebayes" | "bayes" => "bayes",
            "kmeans" => "kmeans",
            "pca" => "pca",
            "decisiontree" => "decisiontree",
            "terasort" => "terasort",
            "pagerank" => "pagerank",
            "sort" => "sort",
            other => other,
        };
        key.to_string()
    }
}

/// The full benchmark catalog.
#[derive(Debug, Clone)]
pub struct Catalog {
    benchmarks: Vec<Benchmark>,
}

impl Catalog {
    /// The paper's 44 benchmarks.
    #[must_use]
    pub fn paper() -> Self {
        const EXP: CurveFamily = CurveFamily::Exponential;
        const LIN: CurveFamily = CurveFamily::Linear;
        const LOG: CurveFamily = CurveFamily::NapierianLog;
        // (suite, base, family, m, b, cpu_util, rate_gb_per_s)
        #[rustfmt::skip]
        let rows: Vec<(Suite, &'static str, CurveFamily, f64, f64, f64, f64)> = vec![
            // --- HiBench (9) ---
            (Suite::HiBench, "Sort",         EXP, 5.768, 4.479, 0.12, 0.011250),
            (Suite::HiBench, "WordCount",    EXP, 11.34, 2.8, 0.21, 0.010000),
            (Suite::HiBench, "TeraSort",     EXP, 17.28, 3.1, 0.25, 0.008750),
            (Suite::HiBench, "Scan",         EXP, 8.1, 5.2, 0.08, 0.013750),
            (Suite::HiBench, "Aggregation",  EXP, 12.96, 3.6, 0.41, 0.007500),
            (Suite::HiBench, "Join",         EXP, 14.04, 2.4, 0.31, 0.008000),
            (Suite::HiBench, "PageRank",     LOG, 16.333, 1.79, 0.35, 0.005500),
            (Suite::HiBench, "Kmeans",       LIN, 0.7378, 1.8, 0.45, 0.004500),
            (Suite::HiBench, "Bayes",        LIN, 0.595, 1.5, 0.33, 0.006250),
            // --- BigDataBench (7) ---
            (Suite::BigDataBench, "Sort",        LOG, 8.3, 1.2, 0.13, 0.010500),
            (Suite::BigDataBench, "Wordcount",   EXP, 9.72, 3.3, 0.22, 0.011000),
            (Suite::BigDataBench, "Grep",        EXP, 7.02, 4.1, 0.09, 0.015000),
            (Suite::BigDataBench, "PageRank",    LOG, 24.8, 2.05, 0.36, 0.005000),
            (Suite::BigDataBench, "Kmeans",      LIN, 0.786, 1.95, 0.42, 0.004750),
            (Suite::BigDataBench, "Con.Com",     LOG, 14.68, 1.5, 0.29, 0.006500),
            (Suite::BigDataBench, "NaivesBayes", LIN, 0.5474, 1.35, 0.32, 0.006750),
            // --- Spark-Perf (15) ---
            (Suite::SparkPerf, "Kmeans",             LIN, 0.7616, 1.875, 0.43, 0.004500),
            (Suite::SparkPerf, "glm-classification", LIN, 0.524, 1.35, 0.37, 0.005250),
            (Suite::SparkPerf, "glm-regression",     LIN, 0.476, 1.2, 0.35, 0.005500),
            (Suite::SparkPerf, "Pca",                LIN, 0.714, 1.65, 0.38, 0.004750),
            (Suite::SparkPerf, "DecisionTree",       LIN, 0.3808, 1.05, 0.33, 0.006000),
            (Suite::SparkPerf, "Spearman",           LOG, 12.7, 1.4, 0.28, 0.006500),
            (Suite::SparkPerf, "NaiveBayes",         LIN, 0.5712, 1.425, 0.29, 0.006750),
            (Suite::SparkPerf, "CoreRDD",            EXP, 8.64, 2.9, 0.15, 0.012000),
            (Suite::SparkPerf, "Gmm",                LOG, 15.56, 1.45, 0.46, 0.004250),
            (Suite::SparkPerf, "Sum.Statis",         LIN, 0.2856, 0.75, 0.16, 0.012500),
            (Suite::SparkPerf, "B.MatrixMult",       LIN, 0.8092, 2.1, 0.52, 0.003750),
            (Suite::SparkPerf, "Pearson",            LIN, 0.5712, 1.35, 0.27, 0.007000),
            (Suite::SparkPerf, "Chi-sq",             LIN, 0.3332, 0.9, 0.18, 0.011250),
            (Suite::SparkPerf, "ALS",                LIN, 0.6426, 1.725, 0.44, 0.004500),
            (Suite::SparkPerf, "Sort",               EXP, 14.58, 4.0, 0.19, 0.010750),
            // --- Spark-Bench (13) ---
            (Suite::SparkBench, "SVD++",         LOG, 23.7, 1.95, 0.55, 0.003500),
            (Suite::SparkBench, "Hive",          EXP, 11.88, 2.5, 0.23, 0.009000),
            (Suite::SparkBench, "MatrixFact",    LOG, 18.2, 1.7, 0.47, 0.004000),
            (Suite::SparkBench, "LogRegre",      LIN, 0.4998, 1.275, 0.34, 0.005750),
            (Suite::SparkBench, "RDDRelation",   EXP, 10.53, 3.0, 0.24, 0.009500),
            (Suite::SparkBench, "TeraSort",      EXP, 16.47, 3.4, 0.26, 0.008500),
            (Suite::SparkBench, "SVM",           LIN, 0.5474, 1.425, 0.39, 0.005000),
            (Suite::SparkBench, "TriangleCount", LOG, 22.6, 1.9, 0.37, 0.005250),
            (Suite::SparkBench, "ShortestPaths", LOG, 19.96, 1.75, 0.28, 0.006000),
            (Suite::SparkBench, "PregelOp",      LOG, 21.5, 1.85, 0.38, 0.005000),
            (Suite::SparkBench, "PCA",           LIN, 0.6902, 1.575, 0.26, 0.005250),
            (Suite::SparkBench, "KMeans",        LIN, 0.714, 1.725, 0.48, 0.004250),
            (Suite::SparkBench, "DecisionTree",  LIN, 0.4046, 1.125, 0.58, 0.003750),
        ];
        let benchmarks = rows
            .into_iter()
            .enumerate()
            .map(
                |(index, (suite, base, family, m, b, cpu_util, rate))| Benchmark {
                    suite,
                    base,
                    curve: FittedCurve { family, m, b },
                    cpu_util,
                    rate_gb_per_s: rate,
                    index,
                },
            )
            .collect();
        Catalog { benchmarks }
    }

    /// Number of benchmarks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.benchmarks.len()
    }

    /// Whether the catalog is empty (never, for [`Catalog::paper`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.benchmarks.is_empty()
    }

    /// All benchmarks, in catalog order.
    #[must_use]
    pub fn all(&self) -> &[Benchmark] {
        &self.benchmarks
    }

    /// Looks up a benchmark by full name (e.g. `"HB.Sort"`).
    #[must_use]
    pub fn by_name(&self, name: &str) -> Option<&Benchmark> {
        self.benchmarks.iter().find(|b| b.name() == name)
    }

    /// Benchmarks of one suite, in catalog order.
    #[must_use]
    pub fn by_suite(&self, suite: Suite) -> Vec<&Benchmark> {
        self.benchmarks
            .iter()
            .filter(|b| b.suite() == suite)
            .collect()
    }

    /// The 16 training benchmarks: HiBench + BigDataBench (§3.3).
    #[must_use]
    pub fn training_set(&self) -> Vec<&Benchmark> {
        self.benchmarks
            .iter()
            .filter(|b| matches!(b.suite(), Suite::HiBench | Suite::BigDataBench))
            .collect()
    }

    /// Benchmarks equivalent to `bench` (same algorithm in another suite),
    /// *excluding* `bench` itself — the paper's extra cross-validation
    /// exclusions (§5.2).
    #[must_use]
    pub fn equivalents_of(&self, bench: &Benchmark) -> Vec<&Benchmark> {
        let key = bench.equivalence_key();
        self.benchmarks
            .iter()
            .filter(|b| b.index() != bench.index() && b.equivalence_key() == key)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forty_four_benchmarks_with_unique_names() {
        let c = Catalog::paper();
        assert_eq!(c.len(), 44);
        let names: std::collections::HashSet<String> =
            c.all().iter().map(Benchmark::name).collect();
        assert_eq!(names.len(), 44);
    }

    #[test]
    fn sixteen_training_benchmarks() {
        let c = Catalog::paper();
        assert_eq!(c.training_set().len(), 16);
    }

    #[test]
    fn suites_partition_the_catalog() {
        let c = Catalog::paper();
        let counts: Vec<usize> = [
            Suite::HiBench,
            Suite::BigDataBench,
            Suite::SparkPerf,
            Suite::SparkBench,
        ]
        .iter()
        .map(|&s| c.by_suite(s).len())
        .collect();
        assert_eq!(counts, vec![9, 7, 15, 13]);
        assert_eq!(counts.iter().sum::<usize>(), 44);
    }

    #[test]
    fn paper_reported_coefficients_are_exact() {
        let c = Catalog::paper();
        let sort = c.by_name("HB.Sort").unwrap();
        assert_eq!(sort.family(), CurveFamily::Exponential);
        assert_eq!(sort.curve().m, 5.768);
        assert_eq!(sort.curve().b, 4.479);
        let pr = c.by_name("HB.PageRank").unwrap();
        assert_eq!(pr.family(), CurveFamily::NapierianLog);
        assert_eq!(pr.curve().m, 16.333);
        assert_eq!(pr.curve().b, 1.79);
    }

    #[test]
    fn cpu_load_histogram_matches_fig13() {
        let c = Catalog::paper();
        let mut bins = [0usize; 6];
        for b in c.all() {
            let bin = (b.cpu_util() * 10.0) as usize;
            assert!(bin < 6, "{} has CPU above 60 %", b.name());
            bins[bin] += 1;
        }
        assert_eq!(bins, [2, 6, 12, 13, 8, 3]);
    }

    #[test]
    fn all_three_families_are_represented() {
        let c = Catalog::paper();
        for family in CurveFamily::ALL {
            let count = c.all().iter().filter(|b| b.family() == family).count();
            assert!(count >= 10, "{family} has only {count} benchmarks");
        }
    }

    #[test]
    fn equivalence_links_cross_suite_twins() {
        let c = Catalog::paper();
        let hb_sort = c.by_name("HB.Sort").unwrap();
        let eq: Vec<String> = c.equivalents_of(hb_sort).iter().map(|b| b.name()).collect();
        assert!(eq.contains(&"BDB.Sort".to_string()));
        assert!(eq.contains(&"SP.Sort".to_string()));
        assert!(!eq.contains(&"HB.Sort".to_string()));

        let hb_bayes = c.by_name("HB.Bayes").unwrap();
        let eq: Vec<String> = c
            .equivalents_of(hb_bayes)
            .iter()
            .map(|b| b.name())
            .collect();
        assert!(eq.contains(&"BDB.NaivesBayes".to_string()));
        assert!(eq.contains(&"SP.NaiveBayes".to_string()));
    }

    #[test]
    fn footprints_fit_one_node_for_typical_slices() {
        // A 64 GB node must be able to host any benchmark's executor on a
        // dynamic-allocation-sized slice.
        let c = Catalog::paper();
        for b in c.all() {
            let fp = b.true_footprint_gb(32.0);
            assert!(fp < 60.0, "{}: 32 GB slice needs {fp} GB", b.name());
            assert!(b.true_footprint_gb(0.05) >= 0.0);
        }
    }

    #[test]
    fn app_spec_carries_benchmark_properties() {
        let c = Catalog::paper();
        let b = c.by_name("SB.Hive").unwrap();
        let spec = b.app_spec(30.0, 0.02);
        assert_eq!(spec.name, "SB.Hive");
        assert_eq!(spec.input_gb, 30.0);
        assert_eq!(spec.cpu_util, b.cpu_util());
        assert_eq!(spec.memory_curve, b.curve());
        assert_eq!(spec.footprint_noise_sd, 0.02);
    }

    #[test]
    fn lookup_misses_return_none() {
        let c = Catalog::paper();
        assert!(c.by_name("HB.NoSuch").is_none());
        assert!(!c.is_empty());
    }
}
