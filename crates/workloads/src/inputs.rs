//! Input datasets as RDDs: records, partitions and generation (§5.2:
//! "Inputs were generated using the input generation tool provided by each
//! benchmark suite").
//!
//! Spark inputs are not fluid: they are RDDs of records split into
//! partitions (typically one HDFS block, 128 MB, each). Executors are
//! handed whole partitions, so data slices are *quantized*. This module
//! models that granularity; the dispatcher uses
//! [`DatasetSpec::quantize_slice_gb`] to snap its memory-budgeted slice
//! sizes to whole partitions.

use crate::catalog::{Benchmark, Suite};
use serde::{Deserialize, Serialize};
use simkit::SimRng;

/// A generated input dataset for one benchmark run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Total size (GB).
    pub size_gb: f64,
    /// Number of partitions.
    pub partitions: usize,
    /// Average record size (bytes).
    pub record_bytes: usize,
    /// Number of records.
    pub records: u64,
    /// Partition-size skew: ratio of the largest to the mean partition
    /// (text-ish inputs come out of generators slightly uneven).
    pub skew: f64,
}

/// The HDFS block size partitioning defaults to (GB).
pub const DEFAULT_PARTITION_GB: f64 = 0.128;

impl DatasetSpec {
    /// Average partition size (GB).
    #[must_use]
    pub fn partition_gb(&self) -> f64 {
        self.size_gb / self.partitions as f64
    }

    /// Snaps a desired slice to a whole number of partitions (at least
    /// one, at most the whole dataset).
    #[must_use]
    pub fn quantize_slice_gb(&self, desired_gb: f64) -> f64 {
        let part = self.partition_gb();
        if part <= 0.0 {
            return desired_gb;
        }
        let parts = (desired_gb / part).floor().max(1.0);
        (parts * part).min(self.size_gb)
    }
}

/// Generates the input dataset for a benchmark at a given size, the way
/// each suite's generator tool would (record sizes and skew differ by the
/// kind of data the suite feeds its benchmarks).
#[must_use]
pub fn generate_dataset(bench: &Benchmark, size_gb: f64, rng: &mut SimRng) -> DatasetSpec {
    // Record sizes: web-ish text for HiBench/BigDataBench, numeric vectors
    // for Spark-Perf, mixed for Spark-Bench.
    let (record_bytes, skew_range) = match bench.suite() {
        Suite::HiBench => (200, (1.05, 1.3)),
        Suite::BigDataBench => (350, (1.05, 1.4)),
        Suite::SparkPerf => (64, (1.0, 1.1)),
        Suite::SparkBench => (128, (1.0, 1.2)),
    };
    let partitions = ((size_gb / DEFAULT_PARTITION_GB).ceil() as usize).max(1);
    let records = ((size_gb * 1e9) / record_bytes as f64) as u64;
    let skew = rng.uniform(skew_range.0, skew_range.1);
    DatasetSpec {
        size_gb,
        partitions,
        record_bytes,
        records,
        skew,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;

    #[test]
    fn partitions_follow_block_size() {
        let catalog = Catalog::paper();
        let bench = catalog.by_name("HB.Sort").unwrap();
        let mut rng = SimRng::seed_from(1);
        let ds = generate_dataset(bench, 30.0, &mut rng);
        assert_eq!(ds.partitions, (30.0 / DEFAULT_PARTITION_GB).ceil() as usize);
        assert!(ds.partition_gb() <= DEFAULT_PARTITION_GB + 1e-9);
        assert!(ds.records > 0);
    }

    #[test]
    fn tiny_inputs_get_one_partition() {
        let catalog = Catalog::paper();
        let bench = catalog.by_name("BDB.Grep").unwrap();
        let mut rng = SimRng::seed_from(2);
        let ds = generate_dataset(bench, 0.05, &mut rng);
        assert_eq!(ds.partitions, 1);
        assert_eq!(ds.quantize_slice_gb(0.01), 0.05);
    }

    #[test]
    fn quantization_snaps_down_to_whole_partitions() {
        let ds = DatasetSpec {
            size_gb: 10.0,
            partitions: 80, // 0.125 GB each
            record_bytes: 100,
            records: 1,
            skew: 1.0,
        };
        let q = ds.quantize_slice_gb(1.0);
        assert!((q - 1.0).abs() < 1e-9, "1.0 is already 8 partitions");
        let q = ds.quantize_slice_gb(0.99);
        assert!((q - 0.875).abs() < 1e-9, "snaps down to 7 partitions");
        // Never below one partition; never above the dataset.
        assert!((ds.quantize_slice_gb(0.001) - 0.125).abs() < 1e-9);
        assert!((ds.quantize_slice_gb(1e9) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn suites_produce_different_record_shapes() {
        let catalog = Catalog::paper();
        let mut rng = SimRng::seed_from(3);
        let hb = generate_dataset(catalog.by_name("HB.Sort").unwrap(), 1.0, &mut rng);
        let sp = generate_dataset(catalog.by_name("SP.Kmeans").unwrap(), 1.0, &mut rng);
        assert!(hb.record_bytes > sp.record_bytes);
        assert!(hb.skew >= 1.0 && sp.skew >= 1.0);
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let catalog = Catalog::paper();
        let bench = catalog.by_name("SB.Hive").unwrap();
        let a = generate_dataset(bench, 30.0, &mut SimRng::seed_from(9));
        let b = generate_dataset(bench, 30.0, &mut SimRng::seed_from(9));
        assert_eq!(a, b);
    }
}
