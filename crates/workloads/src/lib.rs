//! # workloads — the paper's 44 Spark benchmarks and PARSEC co-runners
//!
//! The Middleware '17 evaluation uses 44 Java-based Spark applications from
//! four suites — HiBench, BigDataBench, Spark-Perf and Spark-Bench — plus
//! 12 computation-intensive PARSEC 3.0 benchmarks for the interference
//! study (Fig. 15). The real benchmark binaries cannot run here, so this
//! crate models each one with the properties the evaluation exercises:
//!
//! * a **ground-truth memory curve** (one of the Table 1 families with
//!   per-benchmark coefficients — e.g. the paper reports Sort as
//!   exponential with `m = 5.768, b = 4.479` and PageRank as logarithmic
//!   with `m = 16.333, b = 1.79`, §3.1);
//! * an **average CPU utilisation** whose distribution over the 44
//!   benchmarks reproduces Fig. 13 (mostly under 40 %);
//! * a **nominal per-executor throughput**;
//! * a 22-dimensional **feature signature** lying in one of three clusters
//!   (one per memory-function family), reproducing the Fig. 16 structure
//!   that makes the KNN expert selector work.
//!
//! [`mixes`] provides the Table 3 runtime scenarios (L1..L10), the fixed
//! 30-application mix of Table 4, and the random-mix generator of §5.2.
//!
//! ```
//! use workloads::catalog::Catalog;
//!
//! let catalog = Catalog::paper();
//! assert_eq!(catalog.len(), 44);
//! let sort = catalog.by_name("HB.Sort").unwrap();
//! assert_eq!(sort.family().name(), "Exponential Regression");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod catalog;
pub mod inputs;
pub mod mixes;
pub mod parsec;
pub mod signatures;
pub mod staging;

pub use catalog::{Benchmark, Catalog, Suite};
pub use mixes::{InputSize, MixEntry, MixScenario};
