//! Program-phase modeling — the §3.4 extension.
//!
//! The paper notes that "our approach can model changing program phases by
//! e.g. treating a long-running phase as an individual application". This
//! module implements that composition: each phase of an application is
//! profiled, selected and calibrated *as if it were its own application*,
//! and the per-phase models compose into a [`PhasedModel`] whose answers
//! are safe for the whole run:
//!
//! * the **footprint** of a slice is the *peak* across phases (the
//!   executor must survive its hungriest phase);
//! * the **budget inversion** is the *most conservative* per-phase answer
//!   (a slice fits only if every phase fits).

use crate::calibration::CalibratedModel;
use crate::expert::ExpertId;
use crate::features::FeatureVector;
use crate::predictor::MoePredictor;
use crate::selector::Selection;
use crate::MoeError;

/// One profiled phase: its runtime features and two calibration points.
#[derive(Debug, Clone)]
pub struct PhaseProfile {
    /// Phase label (e.g. "shuffle", "iterate").
    pub name: String,
    /// Features observed while the phase executed.
    pub features: FeatureVector,
    /// Two `(input, footprint_gb)` calibration measurements for the phase.
    pub calibration: [(f64, f64); 2],
}

/// A per-phase selection + calibrated model.
#[derive(Debug)]
pub struct PhaseModel {
    /// Phase label.
    pub name: String,
    /// Expert chosen for the phase.
    pub expert: ExpertId,
    /// Selection evidence.
    pub selection: Selection,
    /// The phase's calibrated memory model.
    pub model: CalibratedModel,
}

/// The composed multi-phase memory model.
#[derive(Debug)]
pub struct PhasedModel {
    phases: Vec<PhaseModel>,
}

impl PhasedModel {
    /// Builds the composite by running the §4.1 pipeline per phase.
    ///
    /// # Errors
    ///
    /// Returns [`MoeError::InvalidTraining`] for an empty phase list and
    /// propagates selection/calibration failures (annotated with the
    /// failing phase's name).
    pub fn from_profiles(
        predictor: &MoePredictor,
        profiles: &[PhaseProfile],
    ) -> Result<Self, MoeError> {
        if profiles.is_empty() {
            return Err(MoeError::InvalidTraining(
                "an application needs at least one phase".into(),
            ));
        }
        let mut phases = Vec::with_capacity(profiles.len());
        for profile in profiles {
            let selection = predictor
                .select(&profile.features)
                .map_err(|e| MoeError::InvalidTraining(format!("phase '{}': {e}", profile.name)))?;
            let model = predictor
                .calibrate(
                    selection.expert,
                    profile.calibration[0],
                    profile.calibration[1],
                )
                .map_err(|e| MoeError::Calibration(format!("phase '{}': {e}", profile.name)))?;
            phases.push(PhaseModel {
                name: profile.name.clone(),
                expert: selection.expert,
                selection,
                model,
            });
        }
        Ok(PhasedModel { phases })
    }

    /// The per-phase models, in profile order.
    #[must_use]
    pub fn phases(&self) -> &[PhaseModel] {
        &self.phases
    }

    /// Peak predicted footprint across phases for a slice of `input`.
    #[must_use]
    pub fn peak_footprint_gb(&self, input: f64) -> f64 {
        self.phases
            .iter()
            .map(|p| p.model.footprint_gb(input))
            .fold(0.0, f64::max)
    }

    /// The phase that dominates the footprint at `input`.
    #[must_use]
    pub fn dominant_phase(&self, input: f64) -> &PhaseModel {
        self.phases
            .iter()
            .max_by(|a, b| {
                a.model
                    .footprint_gb(input)
                    .partial_cmp(&b.model.footprint_gb(input))
                    .expect("finite footprints")
            })
            .expect("at least one phase")
    }

    /// Largest slice whose *peak* footprint fits `budget_gb`: the minimum
    /// of the per-phase inversions. `None` if any phase fits nothing.
    #[must_use]
    pub fn max_input_for_budget(&self, budget_gb: f64) -> Option<f64> {
        let mut best = f64::INFINITY;
        for p in &self.phases {
            match p.model.max_input_for_budget(budget_gb) {
                Some(x) => best = best.min(x),
                None => return None,
            }
        }
        Some(best)
    }

    /// Whether any phase's selection was flagged low-confidence.
    #[must_use]
    pub fn any_low_confidence(&self) -> bool {
        self.phases.iter().any(|p| p.selection.low_confidence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::{MoePredictor, PredictorConfig, TrainingProgram};
    use crate::registry::ExpertRegistry;
    use mlkit::regression::{CurveFamily, FittedCurve};

    fn cluster_features(cluster: usize) -> FeatureVector {
        FeatureVector::from_fn(|i| if i / 8 == cluster.min(2) { 0.9 } else { 0.1 })
    }

    fn predictor() -> MoePredictor {
        let registry = ExpertRegistry::builtin();
        let mut programs = Vec::new();
        for c in 0..3 {
            for j in 0..3 {
                let mut f = cluster_features(c);
                f.set(crate::features::RawFeature::Sy, 0.1 + j as f64 * 0.01);
                programs.push(TrainingProgram::new(
                    format!("p{c}{j}"),
                    f,
                    ExpertId::from_usize(c),
                ));
            }
        }
        MoePredictor::train(registry, &programs, PredictorConfig::default()).unwrap()
    }

    fn profile(name: &str, cluster: usize, truth: &FittedCurve) -> PhaseProfile {
        PhaseProfile {
            name: name.into(),
            features: cluster_features(cluster),
            calibration: [(1.0, truth.eval(1.0)), (2.0, truth.eval(2.0))],
        }
    }

    #[test]
    fn composes_two_phases_with_peak_semantics() {
        let predictor = predictor();
        // Phase A: linear, hungry at large inputs. Phase B: logarithmic,
        // hungry at small inputs (big intercept).
        let lin = FittedCurve {
            family: CurveFamily::Linear,
            m: 1.0,
            b: 0.0,
        };
        let log = FittedCurve {
            family: CurveFamily::NapierianLog,
            m: 10.0,
            b: 1.0,
        };
        let model = PhasedModel::from_profiles(
            &predictor,
            &[profile("map", 0, &lin), profile("iterate", 2, &log)],
        )
        .unwrap();
        assert_eq!(model.phases().len(), 2);
        // At x = 4: lin = 4, log ≈ 11.4 → log dominates.
        assert!((model.peak_footprint_gb(4.0) - log.eval(4.0)).abs() < 1e-6);
        assert_eq!(model.dominant_phase(4.0).name, "iterate");
        // At x = 40: lin = 40, log ≈ 13.7 → lin dominates.
        assert!((model.peak_footprint_gb(40.0) - 40.0).abs() < 1e-6);
        assert_eq!(model.dominant_phase(40.0).name, "map");
    }

    #[test]
    fn budget_inversion_respects_every_phase() {
        let predictor = predictor();
        let lin = FittedCurve {
            family: CurveFamily::Linear,
            m: 1.0,
            b: 0.0,
        };
        let log = FittedCurve {
            family: CurveFamily::NapierianLog,
            m: 10.0,
            b: 1.0,
        };
        let model = PhasedModel::from_profiles(
            &predictor,
            &[profile("map", 0, &lin), profile("iterate", 2, &log)],
        )
        .unwrap();
        let budget = 12.0;
        let x = model.max_input_for_budget(budget).unwrap();
        assert!(model.peak_footprint_gb(x) <= budget * 1.01);
        // Slightly more input must violate the budget in some phase.
        assert!(model.peak_footprint_gb(x * 1.05) > budget);
    }

    #[test]
    fn budget_below_any_phase_floor_fits_nothing() {
        let predictor = predictor();
        let log = FittedCurve {
            family: CurveFamily::NapierianLog,
            m: 30.0,
            b: 1.0,
        };
        let model = PhasedModel::from_profiles(&predictor, &[profile("iterate", 2, &log)]).unwrap();
        // A budget so far below the phase's floor that even the smallest
        // representable slice would not fit.
        assert_eq!(model.max_input_for_budget(1.0), None);
    }

    #[test]
    fn empty_phase_list_rejected() {
        let predictor = predictor();
        assert!(matches!(
            PhasedModel::from_profiles(&predictor, &[]),
            Err(MoeError::InvalidTraining(_))
        ));
    }

    #[test]
    fn phase_errors_name_the_phase() {
        let predictor = predictor();
        // Exponential phase with decreasing calibration points: the exact
        // solve fails (phases use plain calibrate, no robust fallback).
        let bad = PhaseProfile {
            name: "shuffle".into(),
            features: cluster_features(1),
            calibration: [(1.0, 5.0), (2.0, 4.0)],
        };
        let err = PhasedModel::from_profiles(&predictor, &[bad]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("shuffle"), "message was: {msg}");
    }
}
