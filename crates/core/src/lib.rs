//! # moe-core — mixture-of-experts memory-footprint modeling
//!
//! This crate is the primary contribution of *"Improving Spark Application
//! Throughput Via Memory Aware Task Co-location: A Mixture of Experts
//! Approach"* (Marco et al., Middleware '17): a framework that predicts how
//! much memory a Spark-style executor needs for a given input size, by
//!
//! 1. keeping a **registry of memory functions** ("experts", Table 1 of the
//!    paper) — linear, saturating-exponential and Napierian-logarithmic
//!    curves of footprint vs. input size — that is **extensible**: new
//!    expert families can be registered at any time without retraining
//!    ([`registry::ExpertRegistry`]);
//! 2. choosing the right expert for an unseen application with a KNN
//!    **expert selector** over scaled, PCA-reduced runtime features
//!    ([`selector::ExpertSelector`]), whose nearest-neighbour distance
//!    doubles as a **confidence** signal with a conservative fallback
//!    (§6.9 of the paper);
//! 3. instantiating the chosen expert's two coefficients from **two
//!    lightweight profiling runs** on 5 % and 10 % of the input
//!    ([`calibration`], §4.1 "Model Calibration"); and
//! 4. exposing the calibrated model's **forward** (items → footprint) and
//!    **inverse** (memory budget → items) forms, which is exactly what a
//!    co-locating job dispatcher needs (§4.3).
//!
//! The end-to-end façade is [`predictor::MoePredictor`].
//!
//! ```
//! use moe_core::features::FeatureVector;
//! use moe_core::predictor::{MoePredictor, TrainingProgram};
//! use moe_core::registry::ExpertRegistry;
//! use mlkit::regression::{CurveFamily, FittedCurve};
//!
//! // Train on two synthetic programs, one linear, one logarithmic.
//! let registry = ExpertRegistry::builtin();
//! let lin = registry.id_of("Linear Regression").unwrap();
//! let log = registry.id_of("Napierian Logarithmic Regression").unwrap();
//! let programs = vec![
//!     TrainingProgram::new("lin-app", FeatureVector::from_fn(|i| i as f64), lin),
//!     TrainingProgram::new("log-app", FeatureVector::from_fn(|i| 22.0 - i as f64), log),
//! ];
//! let predictor = MoePredictor::train(registry, &programs, Default::default())?;
//!
//! // At runtime: profile features, select an expert, calibrate on 2 points.
//! let truth = FittedCurve { family: CurveFamily::Linear, m: 2.0, b: 0.5 };
//! let sel = predictor.select(&FeatureVector::from_fn(|i| i as f64 + 0.01))?;
//! let model = predictor.calibrate(sel.expert, (5.0, truth.eval(5.0)), (10.0, truth.eval(10.0)))?;
//! assert!((model.footprint_gb(100.0) - truth.eval(100.0)).abs() < 1e-6);
//! # Ok::<(), moe_core::MoeError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod calibration;
pub mod expert;
pub mod features;
pub mod phases;
pub mod predictor;
pub mod registry;
pub mod selector;

pub use calibration::CalibratedModel;
pub use expert::{ExpertId, MemoryExpert};
pub use predictor::MoePredictor;
pub use registry::ExpertRegistry;
pub use selector::{ExpertSelector, Selection};

use std::fmt;

/// Errors raised by the mixture-of-experts framework.
#[derive(Debug, Clone, PartialEq)]
pub enum MoeError {
    /// The referenced expert does not exist in the registry.
    UnknownExpert(String),
    /// Training inputs were empty or inconsistent.
    InvalidTraining(String),
    /// Calibration points were unusable for the chosen expert.
    Calibration(String),
    /// An underlying mlkit operation failed.
    Ml(mlkit::MlError),
}

impl fmt::Display for MoeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MoeError::UnknownExpert(name) => write!(f, "unknown expert: {name}"),
            MoeError::InvalidTraining(msg) => write!(f, "invalid training data: {msg}"),
            MoeError::Calibration(msg) => write!(f, "calibration failed: {msg}"),
            MoeError::Ml(e) => write!(f, "ml error: {e}"),
        }
    }
}

impl std::error::Error for MoeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MoeError::Ml(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mlkit::MlError> for MoeError {
    fn from(e: mlkit::MlError) -> Self {
        MoeError::Ml(e)
    }
}
