//! The expert selector: min-max scaling → PCA → KNN (paper §3.2, §4.1).
//!
//! Feature vectors collected from a ~100 MB profiling run are scaled with
//! the bounds recorded at training time, projected onto the principal
//! components that cover 95 % of training variance, and classified by a
//! K-nearest-neighbour model whose labels are [`ExpertId`]s. The Euclidean
//! distance to the nearest training program is exposed as a confidence
//! measure: beyond a threshold the runtime falls back to a conservative
//! policy instead of trusting the prediction (§6.9).

use crate::expert::ExpertId;
use crate::features::FeatureVector;
use crate::MoeError;
use mlkit::knn::KnnClassifier;
use mlkit::pca::Pca;
use mlkit::scaling::MinMaxScaler;
use serde::{Deserialize, Serialize};

/// Configuration of the selector pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SelectorConfig {
    /// `k` of the KNN vote. The paper's classifier is nearest-neighbour
    /// with distance-based confidence; `k = 1` reproduces it exactly.
    pub k: usize,
    /// Cumulative explained-variance target for PCA (paper: 0.95).
    pub variance_target: f64,
    /// Explicit number of principal components, overriding
    /// `variance_target` when set (the paper's deployment keeps the top
    /// five). Clamped to the feature dimensionality.
    pub components: Option<usize>,
    /// Nearest-neighbour distance (in PC space) beyond which the
    /// prediction is flagged low-confidence.
    pub confidence_threshold: f64,
}

impl Default for SelectorConfig {
    fn default() -> Self {
        SelectorConfig {
            k: 1,
            variance_target: 0.95,
            components: None,
            confidence_threshold: 2.5,
        }
    }
}

/// The outcome of expert selection for one application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Selection {
    /// The chosen expert.
    pub expert: ExpertId,
    /// Euclidean distance to the nearest training program in PC space.
    pub distance: f64,
    /// `true` when `distance` exceeds the configured threshold and the
    /// caller should use its conservative fallback policy.
    pub low_confidence: bool,
}

/// A fitted selector pipeline.
///
/// # Examples
///
/// ```
/// use moe_core::features::FeatureVector;
/// use moe_core::selector::{ExpertSelector, SelectorConfig};
/// use moe_core::expert::ExpertId;
///
/// let a = FeatureVector::from_fn(|i| i as f64);
/// let b = FeatureVector::from_fn(|i| 30.0 - i as f64);
/// let selector = ExpertSelector::train(
///     &[(a.clone(), ExpertId::from_usize(0)), (b, ExpertId::from_usize(1))],
///     SelectorConfig::default(),
/// )?;
/// let sel = selector.select(&a)?;
/// assert_eq!(sel.expert, ExpertId::from_usize(0));
/// # Ok::<(), moe_core::MoeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ExpertSelector {
    scaler: MinMaxScaler,
    pca: Pca,
    knn: KnnClassifier,
    config: SelectorConfig,
}

impl ExpertSelector {
    /// Trains the pipeline on `(features, expert)` exemplars.
    ///
    /// # Errors
    ///
    /// Returns [`MoeError::InvalidTraining`] for an empty training set and
    /// propagates mlkit fitting errors.
    pub fn train(
        exemplars: &[(FeatureVector, ExpertId)],
        config: SelectorConfig,
    ) -> Result<Self, MoeError> {
        if exemplars.is_empty() {
            return Err(MoeError::InvalidTraining(
                "selector needs at least one exemplar".into(),
            ));
        }
        let raw: Vec<Vec<f64>> = exemplars
            .iter()
            .map(|(f, _)| f.as_slice().to_vec())
            .collect();
        let labels: Vec<usize> = exemplars.iter().map(|(_, id)| id.as_usize()).collect();

        let scaler = MinMaxScaler::fit(&raw)?;
        let scaled = scaler.transform_batch(&raw)?;
        let pca = match config.components {
            Some(k) => Pca::fit(&scaled, k.clamp(1, scaled[0].len()))?,
            None => Pca::fit_for_variance(&scaled, config.variance_target)?,
        };
        let projected = pca.transform_batch(&scaled)?;
        let knn = KnnClassifier::fit(&projected, &labels, config.k)?;
        Ok(ExpertSelector {
            scaler,
            pca,
            knn,
            config,
        })
    }

    /// Number of principal components retained.
    #[must_use]
    pub fn components(&self) -> usize {
        self.pca.components()
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> SelectorConfig {
        self.config
    }

    /// Projects raw features through the fitted scaler + PCA (exposed so
    /// analyses like Fig. 16 can plot the learned space).
    ///
    /// # Errors
    ///
    /// Propagates dimension mismatches from the pipeline.
    pub fn project(&self, features: &FeatureVector) -> Result<Vec<f64>, MoeError> {
        // Unclamped: an application far outside the training range must
        // project far from every exemplar, so the nearest-neighbour
        // distance can flag it (clamping would fold it onto the range
        // corners and defeat the §6.9 confidence check).
        let scaled = self.scaler.transform_unclamped(features.as_slice())?;
        Ok(self.pca.transform(&scaled)?)
    }

    /// Selects the expert for an unseen application.
    ///
    /// # Errors
    ///
    /// Propagates pipeline errors (these indicate internal inconsistency,
    /// not bad user input, since `FeatureVector` has fixed arity).
    pub fn select(&self, features: &FeatureVector) -> Result<Selection, MoeError> {
        let projected = self.project(features)?;
        let pred = self.knn.predict_with_evidence(&projected)?;
        Ok(Selection {
            expert: ExpertId::from_usize(pred.label),
            distance: pred.nearest_distance,
            low_confidence: pred.nearest_distance > self.config.confidence_threshold,
        })
    }

    /// Selects experts for a whole batch of applications in three
    /// whole-matrix passes: unclamped scaling
    /// ([`MinMaxScaler::transform_unclamped_matrix`]), PCA projection
    /// ([`Pca::transform_matrix`]) and batched KNN
    /// ([`KnnClassifier::predict_batch`]).
    ///
    /// **Bitwise identical to calling [`ExpertSelector::select`] once per
    /// feature vector, in order** — each stage performs the same
    /// floating-point operations on the same values as its scalar
    /// counterpart (see the determinism notes on the three batched entry
    /// points). Pinned by property tests in `colocate`'s serving suite.
    ///
    /// # Errors
    ///
    /// Propagates pipeline errors.
    pub fn select_batch(&self, features: &[FeatureVector]) -> Result<Vec<Selection>, MoeError> {
        let n = features.len();
        let dims = self.scaler.dims();
        // Scale each sample row straight into the batch matrix: the
        // feature vectors are not contiguous, so gathering and scaling in
        // one pass saves materialising a raw copy first. Row-at-a-time
        // scaling is elementwise — bitwise identical to the whole-matrix
        // call.
        let mut scaled = vec![0.0; n * dims];
        for (srow, f) in scaled.chunks_exact_mut(dims.max(1)).zip(features) {
            self.scaler.transform_unclamped_into(f.as_slice(), srow)?;
        }
        let projected = self.pca.transform_matrix(n, &scaled)?;
        let preds = self.knn.predict_batch(n, &projected)?;
        Ok(preds
            .into_iter()
            .map(|pred| Selection {
                expert: ExpertId::from_usize(pred.label),
                distance: pred.nearest_distance,
                low_confidence: pred.nearest_distance > self.config.confidence_threshold,
            })
            .collect())
    }

    /// The fitted scaling stage (the model artifact save path).
    #[must_use]
    pub fn scaler(&self) -> &MinMaxScaler {
        &self.scaler
    }

    /// The fitted PCA stage (the model artifact save path).
    #[must_use]
    pub fn pca(&self) -> &Pca {
        &self.pca
    }

    /// The fitted KNN stage (the model artifact save path).
    #[must_use]
    pub fn knn(&self) -> &KnnClassifier {
        &self.knn
    }

    /// Reassembles a selector from already-fitted stages (the model
    /// artifact load path).
    ///
    /// # Errors
    ///
    /// Returns [`MoeError::InvalidTraining`] when the stages do not chain:
    /// the scaler and PCA must agree on the raw dimensionality and the
    /// KNN store must live in the PCA's output space.
    pub fn from_parts(
        scaler: MinMaxScaler,
        pca: Pca,
        knn: KnnClassifier,
        config: SelectorConfig,
    ) -> Result<Self, MoeError> {
        if scaler.dims() != pca.input_dims() {
            return Err(MoeError::InvalidTraining(format!(
                "scaler dims {} != PCA input dims {}",
                scaler.dims(),
                pca.input_dims()
            )));
        }
        if mlkit::Classifier::dims(&knn) != pca.components() {
            return Err(MoeError::InvalidTraining(format!(
                "KNN dims {} != PCA components {}",
                mlkit::Classifier::dims(&knn),
                pca.components()
            )));
        }
        Ok(ExpertSelector {
            scaler,
            pca,
            knn,
            config,
        })
    }

    /// Adds a new exemplar **without retraining** the scaler or PCA — the
    /// incremental-extension property the paper attributes to KNN
    /// (Table 5 discussion).
    ///
    /// # Errors
    ///
    /// Propagates pipeline errors.
    pub fn insert_exemplar(
        &mut self,
        features: &FeatureVector,
        expert: ExpertId,
    ) -> Result<(), MoeError> {
        let projected = self.project(features)?;
        self.knn.insert(projected, expert.as_usize())?;
        Ok(())
    }

    /// Number of stored exemplars.
    #[must_use]
    pub fn exemplars(&self) -> usize {
        self.knn.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three feature "clusters" mimicking the paper's Fig. 16 structure.
    fn clustered_exemplars() -> Vec<(FeatureVector, ExpertId)> {
        let mut out = Vec::new();
        for j in 0..6 {
            let jf = j as f64 * 0.01;
            out.push((
                FeatureVector::from_fn(|i| if i < 8 { 0.9 + jf } else { 0.1 }),
                ExpertId::from_usize(0),
            ));
            out.push((
                FeatureVector::from_fn(|i| if (8..16).contains(&i) { 0.9 + jf } else { 0.1 }),
                ExpertId::from_usize(1),
            ));
            out.push((
                FeatureVector::from_fn(|i| if i >= 16 { 0.9 + jf } else { 0.1 }),
                ExpertId::from_usize(2),
            ));
        }
        out
    }

    #[test]
    fn selects_correct_cluster() {
        let ex = clustered_exemplars();
        let sel = ExpertSelector::train(&ex, SelectorConfig::default()).unwrap();
        for (f, id) in &ex {
            let s = sel.select(f).unwrap();
            assert_eq!(s.expert, *id);
            assert!(!s.low_confidence);
        }
    }

    #[test]
    fn distance_flags_outliers() {
        let ex = clustered_exemplars();
        let sel = ExpertSelector::train(
            &ex,
            SelectorConfig {
                confidence_threshold: 0.5,
                ..Default::default()
            },
        )
        .unwrap();
        // A feature vector far outside the training range: after clamped
        // scaling it still lands away from every cluster.
        let outlier = FeatureVector::from_fn(|i| if i % 2 == 0 { 50.0 } else { -50.0 });
        let s = sel.select(&outlier).unwrap();
        assert!(s.low_confidence, "distance = {}", s.distance);
    }

    #[test]
    fn pca_reduces_dimensionality() {
        let ex = clustered_exemplars();
        let sel = ExpertSelector::train(&ex, SelectorConfig::default()).unwrap();
        assert!(sel.components() < 22, "kept {} PCs", sel.components());
    }

    #[test]
    fn insert_exemplar_changes_predictions() {
        let ex = clustered_exemplars();
        let mut sel = ExpertSelector::train(&ex, SelectorConfig::default()).unwrap();
        let novel = FeatureVector::from_fn(|i| if i % 2 == 0 { 0.9 } else { 0.05 });
        let before = sel.select(&novel).unwrap();
        sel.insert_exemplar(&novel, ExpertId::from_usize(2))
            .unwrap();
        let after = sel.select(&novel).unwrap();
        assert_eq!(after.expert, ExpertId::from_usize(2));
        assert!(after.distance <= before.distance);
        assert_eq!(sel.exemplars(), ex.len() + 1);
    }

    #[test]
    fn empty_training_rejected() {
        assert!(matches!(
            ExpertSelector::train(&[], SelectorConfig::default()),
            Err(MoeError::InvalidTraining(_))
        ));
    }

    #[test]
    fn explicit_component_count_is_honoured() {
        let ex = clustered_exemplars();
        for k in [2, 5, 30] {
            let sel = ExpertSelector::train(
                &ex,
                SelectorConfig {
                    components: Some(k),
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(sel.components(), k.min(22));
            // Still classifies its exemplars.
            for (f, id) in &ex {
                assert_eq!(sel.select(f).unwrap().expert, *id);
            }
        }
    }

    #[test]
    fn select_batch_matches_scalar_bitwise() {
        let ex = clustered_exemplars();
        let sel = ExpertSelector::train(&ex, SelectorConfig::default()).unwrap();
        for n in [1usize, 7, 256] {
            let probes: Vec<FeatureVector> = (0..n)
                .map(|j| {
                    FeatureVector::from_fn(|i| {
                        0.05 + ((i * 7 + j * 13) % 23) as f64 / 23.0 * (1.0 + (j % 9) as f64 * 0.3)
                    })
                })
                .collect();
            let batched = sel.select_batch(&probes).unwrap();
            assert_eq!(batched.len(), probes.len());
            for (got, f) in batched.iter().zip(probes.iter()) {
                let want = sel.select(f).unwrap();
                assert_eq!(got.expert, want.expert);
                assert_eq!(got.low_confidence, want.low_confidence);
                assert_eq!(got.distance.to_bits(), want.distance.to_bits());
            }
        }
        assert!(sel.select_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn from_parts_round_trips_and_validates_chain() {
        let ex = clustered_exemplars();
        let sel = ExpertSelector::train(&ex, SelectorConfig::default()).unwrap();
        let rebuilt = ExpertSelector::from_parts(
            sel.scaler().clone(),
            sel.pca().clone(),
            sel.knn().clone(),
            sel.config(),
        )
        .unwrap();
        let probe = FeatureVector::from_fn(|i| 0.2 + i as f64 * 0.01);
        let a = sel.select(&probe).unwrap();
        let b = rebuilt.select(&probe).unwrap();
        assert_eq!(a.expert, b.expert);
        assert_eq!(a.distance.to_bits(), b.distance.to_bits());

        // A KNN fitted in the wrong space must be rejected.
        let bad_knn = mlkit::knn::KnnClassifier::fit(&[vec![0.0; 21]], &[0], 1).unwrap();
        assert!(ExpertSelector::from_parts(
            sel.scaler().clone(),
            sel.pca().clone(),
            bad_knn,
            sel.config(),
        )
        .is_err());
    }

    #[test]
    fn k3_vote_still_selects_cluster() {
        let ex = clustered_exemplars();
        let sel = ExpertSelector::train(
            &ex,
            SelectorConfig {
                k: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let probe = FeatureVector::from_fn(|i| if i < 8 { 0.88 } else { 0.12 });
        assert_eq!(sel.select(&probe).unwrap().expert, ExpertId::from_usize(0));
    }
}
