//! The extensible expert registry.
//!
//! A registry maps [`ExpertId`]s (the class labels of the selector) to
//! [`MemoryExpert`] implementations. New experts can be registered at any
//! time — the KNN selector needs no retraining, only new exemplars — which
//! is the paper's mechanism for evolving the system to cover new kinds of
//! applications.

use crate::expert::{CurveExpert, ExpertId, MemoryExpert, SharedExpert};
use crate::MoeError;
use mlkit::regression::CurveFamily;
use std::sync::Arc;

/// An ordered collection of memory-function experts.
///
/// # Examples
///
/// ```
/// use moe_core::registry::ExpertRegistry;
/// let registry = ExpertRegistry::builtin();
/// assert_eq!(registry.len(), 3); // the Table 1 families
/// assert!(registry.id_of("Linear Regression").is_some());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExpertRegistry {
    experts: Vec<SharedExpert>,
}

impl ExpertRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        ExpertRegistry {
            experts: Vec::new(),
        }
    }

    /// The registry holding the three Table 1 experts, in Table 1 order.
    #[must_use]
    pub fn builtin() -> Self {
        let mut r = ExpertRegistry::new();
        for family in CurveFamily::ALL {
            r.register(Arc::new(CurveExpert::new(family)));
        }
        r
    }

    /// Registers an expert and returns its id. Names should be unique;
    /// lookup by name returns the first match.
    pub fn register(&mut self, expert: SharedExpert) -> ExpertId {
        self.experts.push(expert);
        ExpertId(self.experts.len() - 1)
    }

    /// Number of registered experts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.experts.len()
    }

    /// Whether no experts are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.experts.is_empty()
    }

    /// Looks up an expert by id.
    ///
    /// # Errors
    ///
    /// Returns [`MoeError::UnknownExpert`] for ids not in this registry.
    pub fn get(&self, id: ExpertId) -> Result<&dyn MemoryExpert, MoeError> {
        self.experts
            .get(id.0)
            .map(|e| e.as_ref())
            .ok_or_else(|| MoeError::UnknownExpert(id.to_string()))
    }

    /// Finds the id of the expert with the given name.
    #[must_use]
    pub fn id_of(&self, name: &str) -> Option<ExpertId> {
        self.experts
            .iter()
            .position(|e| e.name() == name)
            .map(ExpertId)
    }

    /// Iterates over `(id, expert)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (ExpertId, &dyn MemoryExpert)> {
        self.experts
            .iter()
            .enumerate()
            .map(|(i, e)| (ExpertId(i), e.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::CalibratedModel;
    use mlkit::regression::FittedCurve;

    #[test]
    fn builtin_has_table1_families_in_order() {
        let r = ExpertRegistry::builtin();
        let names: Vec<&str> = r.iter().map(|(_, e)| e.name()).collect();
        assert_eq!(
            names,
            vec![
                "Linear Regression",
                "Exponential Regression",
                "Napierian Logarithmic Regression"
            ]
        );
    }

    #[test]
    fn get_and_id_of_round_trip() {
        let r = ExpertRegistry::builtin();
        let id = r.id_of("Exponential Regression").unwrap();
        assert_eq!(r.get(id).unwrap().name(), "Exponential Regression");
    }

    #[test]
    fn unknown_id_is_an_error() {
        let r = ExpertRegistry::builtin();
        let err = r.get(ExpertId(99)).unwrap_err();
        assert!(matches!(err, MoeError::UnknownExpert(_)));
        assert!(r.id_of("No Such Expert").is_none());
    }

    /// A custom expert: constant memory independent of input size — the
    /// kind of extension §3.4 anticipates.
    #[derive(Debug)]
    struct ConstantExpert;

    impl MemoryExpert for ConstantExpert {
        fn name(&self) -> &str {
            "Constant"
        }
        fn formula(&self) -> &str {
            "y = m"
        }
        fn fit(&self, _xs: &[f64], ys: &[f64]) -> Result<CalibratedModel, MoeError> {
            let m = ys.iter().sum::<f64>() / ys.len().max(1) as f64;
            Ok(CalibratedModel::from_curve(FittedCurve {
                family: CurveFamily::Linear,
                m: 0.0,
                b: m,
            }))
        }
        fn calibrate(&self, p1: (f64, f64), p2: (f64, f64)) -> Result<CalibratedModel, MoeError> {
            Ok(CalibratedModel::from_curve(FittedCurve {
                family: CurveFamily::Linear,
                m: 0.0,
                b: (p1.1 + p2.1) / 2.0,
            }))
        }
    }

    #[test]
    fn custom_experts_extend_the_registry() {
        let mut r = ExpertRegistry::builtin();
        let id = r.register(Arc::new(ConstantExpert));
        assert_eq!(r.len(), 4);
        assert_eq!(id.as_usize(), 3);
        let model = r
            .get(id)
            .unwrap()
            .calibrate((1.0, 4.0), (2.0, 4.0))
            .unwrap();
        assert_eq!(model.footprint_gb(1e9), 4.0);
    }

    #[test]
    fn empty_registry_reports_empty() {
        let r = ExpertRegistry::new();
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
    }
}
