//! The expert abstraction: a memory-function family that can be fitted
//! offline and calibrated online from two profiling points.
//!
//! The paper's three built-in experts are the Table 1 curve families; the
//! trait exists so that *new* families can be plugged in over time — the
//! extensibility the paper emphasises ("new functions can easily be added
//! and are selected only when appropriate", §1).

use crate::calibration::CalibratedModel;
use crate::MoeError;
use mlkit::regression::{self, CurveFamily, FittedCurve};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Identifier of an expert within an [`crate::registry::ExpertRegistry`].
///
/// Also serves as the class label the expert selector predicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ExpertId(pub(crate) usize);

impl ExpertId {
    /// The numeric label (index into the registry).
    #[must_use]
    pub fn as_usize(self) -> usize {
        self.0
    }

    /// Builds an id from a raw registry index. Prefer obtaining ids from
    /// [`crate::registry::ExpertRegistry`]; this exists for deserialisation
    /// and test fixtures.
    #[must_use]
    pub fn from_usize(i: usize) -> Self {
        ExpertId(i)
    }
}

impl fmt::Display for ExpertId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "expert#{}", self.0)
    }
}

/// A memory-function family ("expert").
///
/// Implementations must be pure: fitting and calibration may not keep
/// mutable state, so one expert instance can serve many applications
/// concurrently.
pub trait MemoryExpert: fmt::Debug + Send + Sync {
    /// Unique human-readable name (also used for registry lookup).
    fn name(&self) -> &str;

    /// The formula in `y = f(x; m, b)` form, for reports.
    fn formula(&self) -> &str;

    /// Least-squares fit over many `(input_size, footprint_gb)` profiles —
    /// the offline training path (Fig. 2 step 2).
    ///
    /// # Errors
    ///
    /// Returns [`MoeError::InvalidTraining`] when the observations cannot
    /// be fitted by this family.
    fn fit(&self, xs: &[f64], ys: &[f64]) -> Result<CalibratedModel, MoeError>;

    /// Exact two-point solve — the online calibration path (§4.1). The
    /// points are `(input_size, footprint_gb)` from the 5 % and 10 %
    /// profiling runs.
    ///
    /// # Errors
    ///
    /// Returns [`MoeError::Calibration`] when the points are incompatible
    /// with this family.
    fn calibrate(&self, p1: (f64, f64), p2: (f64, f64)) -> Result<CalibratedModel, MoeError>;
}

/// An expert backed by one of the Table 1 curve families.
#[derive(Debug, Clone)]
pub struct CurveExpert {
    family: CurveFamily,
}

impl CurveExpert {
    /// Wraps a Table 1 family as an expert.
    #[must_use]
    pub fn new(family: CurveFamily) -> Self {
        CurveExpert { family }
    }

    /// The wrapped family.
    #[must_use]
    pub fn family(&self) -> CurveFamily {
        self.family
    }

    fn model_from(curve: FittedCurve) -> CalibratedModel {
        CalibratedModel::from_curve(curve)
    }
}

impl MemoryExpert for CurveExpert {
    fn name(&self) -> &str {
        self.family.name()
    }

    fn formula(&self) -> &str {
        self.family.formula()
    }

    fn fit(&self, xs: &[f64], ys: &[f64]) -> Result<CalibratedModel, MoeError> {
        let curve = regression::fit_family(self.family, xs, ys)
            .map_err(|e| MoeError::InvalidTraining(e.to_string()))?;
        Ok(Self::model_from(curve))
    }

    fn calibrate(&self, p1: (f64, f64), p2: (f64, f64)) -> Result<CalibratedModel, MoeError> {
        let curve = regression::solve_two_point(self.family, p1, p2)
            .map_err(|e| MoeError::Calibration(e.to_string()))?;
        Ok(Self::model_from(curve))
    }
}

/// Convenience alias: experts are shared immutably.
pub type SharedExpert = Arc<dyn MemoryExpert>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expert_id_display_and_round_trip() {
        let id = ExpertId::from_usize(2);
        assert_eq!(id.as_usize(), 2);
        assert_eq!(id.to_string(), "expert#2");
    }

    #[test]
    fn curve_expert_names_match_family() {
        for family in CurveFamily::ALL {
            let e = CurveExpert::new(family);
            assert_eq!(e.name(), family.name());
            assert_eq!(e.formula(), family.formula());
            assert_eq!(e.family(), family);
        }
    }

    #[test]
    fn curve_expert_fit_and_calibrate_agree_on_clean_data() {
        let expert = CurveExpert::new(CurveFamily::NapierianLog);
        let truth = FittedCurve {
            family: CurveFamily::NapierianLog,
            m: 16.333,
            b: 1.79,
        };
        let xs: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| truth.eval(x)).collect();
        let fitted = expert.fit(&xs, &ys).unwrap();
        let calibrated = expert.calibrate((xs[0], ys[0]), (xs[10], ys[10])).unwrap();
        for &x in &[0.5, 5.0, 50.0] {
            assert!((fitted.footprint_gb(x) - truth.eval(x)).abs() < 1e-6);
            assert!((calibrated.footprint_gb(x) - truth.eval(x)).abs() < 1e-6);
        }
    }

    #[test]
    fn calibrate_propagates_family_errors() {
        let expert = CurveExpert::new(CurveFamily::Exponential);
        let err = expert.calibrate((1.0, 5.0), (2.0, 4.0)).unwrap_err();
        assert!(matches!(err, MoeError::Calibration(_)));
    }

    #[test]
    fn fit_propagates_family_errors() {
        let expert = CurveExpert::new(CurveFamily::NapierianLog);
        let err = expert.fit(&[-1.0, 2.0], &[1.0, 2.0]).unwrap_err();
        assert!(matches!(err, MoeError::InvalidTraining(_)));
    }
}
