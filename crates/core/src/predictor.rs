//! The end-to-end mixture-of-experts façade.
//!
//! [`MoePredictor`] bundles the expert registry and the trained selector
//! into the object a runtime scheduler holds: give it the features from a
//! profiling run and the two calibration measurements, get back a
//! [`CalibratedModel`] to budget memory with.

use crate::calibration::{CalibratedModel, CalibrationPlan};
use crate::expert::ExpertId;
use crate::features::FeatureVector;
use crate::registry::ExpertRegistry;
use crate::selector::{ExpertSelector, Selection, SelectorConfig};
use crate::MoeError;

/// One training program: its profiled features and the expert that best
/// fitted its offline memory curve (Fig. 2 steps 1–3).
#[derive(Debug, Clone)]
pub struct TrainingProgram {
    /// Name, for reports and leave-one-out bookkeeping.
    pub name: String,
    /// Features from the profiling run.
    pub features: FeatureVector,
    /// Label: the expert whose curve fitted this program best.
    pub expert: ExpertId,
}

impl TrainingProgram {
    /// Convenience constructor.
    #[must_use]
    pub fn new(name: impl Into<String>, features: FeatureVector, expert: ExpertId) -> Self {
        TrainingProgram {
            name: name.into(),
            features,
            expert,
        }
    }
}

/// Configuration of the whole predictor (selector + calibration plan).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PredictorConfig {
    /// Selector pipeline settings.
    pub selector: SelectorConfig,
    /// Calibration sampling fractions.
    pub calibration: CalibrationPlan,
}

/// A trained mixture-of-experts memory predictor.
///
/// See the crate-level documentation for a complete example.
#[derive(Debug, Clone)]
pub struct MoePredictor {
    registry: ExpertRegistry,
    selector: ExpertSelector,
    config: PredictorConfig,
}

impl MoePredictor {
    /// Trains the expert selector from labeled training programs.
    ///
    /// # Errors
    ///
    /// Returns [`MoeError::InvalidTraining`] when `programs` is empty or
    /// references experts missing from `registry`, and propagates selector
    /// training errors.
    pub fn train(
        registry: ExpertRegistry,
        programs: &[TrainingProgram],
        config: PredictorConfig,
    ) -> Result<Self, MoeError> {
        if programs.is_empty() {
            return Err(MoeError::InvalidTraining(
                "no training programs supplied".into(),
            ));
        }
        for p in programs {
            registry.get(p.expert).map_err(|_| {
                MoeError::InvalidTraining(format!(
                    "training program '{}' references {} which is not registered",
                    p.name, p.expert
                ))
            })?;
        }
        let exemplars: Vec<(FeatureVector, ExpertId)> = programs
            .iter()
            .map(|p| (p.features.clone(), p.expert))
            .collect();
        let selector = ExpertSelector::train(&exemplars, config.selector)?;
        Ok(MoePredictor {
            registry,
            selector,
            config,
        })
    }

    /// The expert registry.
    #[must_use]
    pub fn registry(&self) -> &ExpertRegistry {
        &self.registry
    }

    /// The trained selector.
    #[must_use]
    pub fn selector(&self) -> &ExpertSelector {
        &self.selector
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> PredictorConfig {
        self.config
    }

    /// Step 1 at runtime: choose the memory function for an application
    /// from its profiled features.
    ///
    /// # Errors
    ///
    /// Propagates selector errors.
    pub fn select(&self, features: &FeatureVector) -> Result<Selection, MoeError> {
        self.selector.select(features)
    }

    /// Batched step 1: choose experts for many applications with
    /// whole-matrix scaling/projection/KNN passes — bitwise identical to
    /// calling [`MoePredictor::select`] once per vector, in order (see
    /// [`ExpertSelector::select_batch`]).
    ///
    /// # Errors
    ///
    /// Propagates selector errors.
    pub fn select_batch(&self, features: &[FeatureVector]) -> Result<Vec<Selection>, MoeError> {
        self.selector.select_batch(features)
    }

    /// Reassembles a predictor from an already-trained selector and
    /// registry (the model artifact load path).
    ///
    /// # Errors
    ///
    /// Returns [`MoeError::InvalidTraining`] when any KNN label references
    /// an expert missing from `registry`.
    pub fn from_parts(
        registry: ExpertRegistry,
        selector: ExpertSelector,
        config: PredictorConfig,
    ) -> Result<Self, MoeError> {
        for &label in selector.knn().labels() {
            registry.get(ExpertId::from_usize(label)).map_err(|_| {
                MoeError::InvalidTraining(format!(
                    "selector references expert {label} which is not registered"
                ))
            })?;
        }
        Ok(MoePredictor {
            registry,
            selector,
            config,
        })
    }

    /// Step 2 at runtime: instantiate the chosen expert's coefficients from
    /// the two calibration measurements `(input_units, footprint_gb)`.
    ///
    /// # Errors
    ///
    /// Returns [`MoeError::UnknownExpert`] for a stale id and
    /// [`MoeError::Calibration`] when the points are incompatible with the
    /// expert's family.
    pub fn calibrate(
        &self,
        expert: ExpertId,
        p1: (f64, f64),
        p2: (f64, f64),
    ) -> Result<CalibratedModel, MoeError> {
        self.registry.get(expert)?.calibrate(p1, p2)
    }

    /// Convenience: select + calibrate in one call, returning the selection
    /// evidence alongside the model.
    ///
    /// # Errors
    ///
    /// Propagates [`MoePredictor::select`] and [`MoePredictor::calibrate`]
    /// errors.
    pub fn predict_model(
        &self,
        features: &FeatureVector,
        p1: (f64, f64),
        p2: (f64, f64),
    ) -> Result<(Selection, CalibratedModel), MoeError> {
        let selection = self.select(features)?;
        let model = self.calibrate(selection.expert, p1, p2)?;
        Ok((selection, model))
    }

    /// Registers a new expert and a first exemplar for it, without
    /// retraining the selector (§1's extensibility claim; see also the
    /// `custom_expert` example).
    ///
    /// # Errors
    ///
    /// Propagates exemplar-insertion errors.
    pub fn extend(
        &mut self,
        expert: crate::expert::SharedExpert,
        exemplar: &FeatureVector,
    ) -> Result<ExpertId, MoeError> {
        let id = self.registry.register(expert);
        self.selector.insert_exemplar(exemplar, id)?;
        Ok(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlkit::regression::{CurveFamily, FittedCurve};

    fn cluster_features(cluster: usize, jitter: f64) -> FeatureVector {
        FeatureVector::from_fn(|i| {
            let band = i / 8; // 0, 1, 2 (band 2 covers 16..22)
            if band == cluster.min(2) {
                0.9 + jitter
            } else {
                0.1 + jitter
            }
        })
    }

    fn trained() -> MoePredictor {
        let registry = ExpertRegistry::builtin();
        let mut programs = Vec::new();
        for j in 0..5 {
            let jf = j as f64 * 0.005;
            for c in 0..3 {
                programs.push(TrainingProgram::new(
                    format!("app-{c}-{j}"),
                    cluster_features(c, jf),
                    ExpertId::from_usize(c),
                ));
            }
        }
        MoePredictor::train(registry, &programs, PredictorConfig::default()).unwrap()
    }

    #[test]
    fn end_to_end_select_and_calibrate() {
        let predictor = trained();
        // An app whose features resemble cluster 1 (exponential family).
        let features = cluster_features(1, 0.002);
        let truth = FittedCurve {
            family: CurveFamily::Exponential,
            m: 5.768,
            b: 4.479,
        };
        let (sel, model) = predictor
            .predict_model(
                &features,
                (0.05, truth.eval(0.05)),
                (0.10, truth.eval(0.10)),
            )
            .unwrap();
        assert_eq!(sel.expert, ExpertId::from_usize(1));
        assert!(!sel.low_confidence);
        assert!((model.footprint_gb(2.0) - truth.eval(2.0)).abs() < 1e-6);
    }

    #[test]
    fn training_rejects_unknown_expert_labels() {
        let registry = ExpertRegistry::builtin();
        let programs = vec![TrainingProgram::new(
            "bad",
            FeatureVector::zeros(),
            ExpertId::from_usize(7),
        )];
        assert!(matches!(
            MoePredictor::train(registry, &programs, PredictorConfig::default()),
            Err(MoeError::InvalidTraining(_))
        ));
    }

    #[test]
    fn training_rejects_empty_set() {
        assert!(
            MoePredictor::train(ExpertRegistry::builtin(), &[], PredictorConfig::default())
                .is_err()
        );
    }

    #[test]
    fn extend_adds_expert_and_exemplar() {
        let mut predictor = trained();
        #[derive(Debug)]
        struct SquareExpert;
        impl crate::expert::MemoryExpert for SquareExpert {
            fn name(&self) -> &str {
                "Square"
            }
            fn formula(&self) -> &str {
                "y = m*x^2 + b"
            }
            fn fit(&self, _: &[f64], _: &[f64]) -> Result<CalibratedModel, MoeError> {
                Err(MoeError::InvalidTraining("unused in test".into()))
            }
            fn calibrate(
                &self,
                p1: (f64, f64),
                p2: (f64, f64),
            ) -> Result<CalibratedModel, MoeError> {
                let m = (p2.1 - p1.1) / (p2.0 * p2.0 - p1.0 * p1.0);
                let b = p1.1 - m * p1.0 * p1.0;
                // Reuse the linear carrier: eval only needs m·x+b shape at
                // test probes below, so store a linear approximation.
                Ok(CalibratedModel::from_curve(FittedCurve {
                    family: CurveFamily::Linear,
                    m,
                    b,
                }))
            }
        }
        // A distinctive feature signature for the new family.
        let signature = FeatureVector::from_fn(|i| if i % 2 == 0 { 0.5 } else { 0.9 });
        let id = predictor
            .extend(std::sync::Arc::new(SquareExpert), &signature)
            .unwrap();
        assert_eq!(predictor.registry().len(), 4);
        let sel = predictor.select(&signature).unwrap();
        assert_eq!(sel.expert, id);
    }

    #[test]
    fn calibrate_with_stale_id_fails() {
        let predictor = trained();
        let err = predictor
            .calibrate(ExpertId::from_usize(42), (1.0, 1.0), (2.0, 2.0))
            .unwrap_err();
        assert!(matches!(err, MoeError::UnknownExpert(_)));
    }
}
