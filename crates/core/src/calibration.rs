//! Calibrated memory models and the two-point calibration plan (§4.1).
//!
//! A [`CalibratedModel`] is a memory function whose coefficients have been
//! instantiated for one specific application+input. It answers the two
//! questions the job dispatcher asks (§4.3):
//!
//! * *forward*: how many GB will an executor holding `x` units of input
//!   need? — [`CalibratedModel::footprint_gb`]
//! * *inverse*: under a memory budget of `y` GB, how many units of input
//!   may the executor be given? — [`CalibratedModel::max_input_for_budget`]

use mlkit::regression::{CurveFamily, FittedCurve};
use serde::{Deserialize, Serialize};

/// The fractions of the remaining input used by the two calibration
/// profiling runs. The paper uses 5 % and 10 % (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibrationPlan {
    /// Fraction of the input for the first profiling run.
    pub first_fraction: f64,
    /// Fraction of the input for the second profiling run.
    pub second_fraction: f64,
}

impl Default for CalibrationPlan {
    fn default() -> Self {
        CalibrationPlan {
            first_fraction: 0.05,
            second_fraction: 0.10,
        }
    }
}

impl CalibrationPlan {
    /// The two sample sizes (in input units) for an input of `total` units.
    ///
    /// # Panics
    ///
    /// Panics if the fractions are not strictly increasing in `(0, 1)`.
    #[must_use]
    pub fn sample_sizes(&self, total: f64) -> (f64, f64) {
        assert!(
            0.0 < self.first_fraction
                && self.first_fraction < self.second_fraction
                && self.second_fraction < 1.0,
            "calibration fractions must satisfy 0 < f1 < f2 < 1"
        );
        (total * self.first_fraction, total * self.second_fraction)
    }
}

/// A memory function with instantiated coefficients.
///
/// # Examples
///
/// ```
/// use moe_core::calibration::CalibratedModel;
/// use mlkit::regression::{CurveFamily, FittedCurve};
///
/// let model = CalibratedModel::from_curve(FittedCurve {
///     family: CurveFamily::Linear,
///     m: 0.5,
///     b: 1.0,
/// });
/// assert_eq!(model.footprint_gb(10.0), 6.0);
/// // 6 GB budget -> at most 10 units of input.
/// assert_eq!(model.max_input_for_budget(6.0), Some(10.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibratedModel {
    curve: FittedCurve,
}

impl CalibratedModel {
    /// Wraps a fitted curve.
    #[must_use]
    pub fn from_curve(curve: FittedCurve) -> Self {
        CalibratedModel { curve }
    }

    /// The underlying curve (family + coefficients).
    #[must_use]
    pub fn curve(&self) -> FittedCurve {
        self.curve
    }

    /// Predicted executor footprint, in GB, for `input` units of data.
    /// Clamped below at zero: a memory model never predicts negative RAM.
    #[must_use]
    pub fn footprint_gb(&self, input: f64) -> f64 {
        self.curve.eval(input).max(0.0)
    }

    /// Largest input (in the same units as calibration) whose predicted
    /// footprint fits within `budget_gb`.
    ///
    /// Returns `None` when no positive amount of input fits. For the
    /// saturating exponential, any budget at or above the asymptote `m`
    /// admits unbounded input; `f64::INFINITY` is returned in that case.
    #[must_use]
    pub fn max_input_for_budget(&self, budget_gb: f64) -> Option<f64> {
        if budget_gb <= 0.0 {
            return None;
        }
        let FittedCurve { family, m, b } = self.curve;
        let x = match family {
            CurveFamily::Linear => {
                if m <= 0.0 {
                    // Flat or decreasing: either everything fits or nothing.
                    return if b <= budget_gb {
                        Some(f64::INFINITY)
                    } else {
                        None
                    };
                }
                (budget_gb - b) / m
            }
            CurveFamily::Exponential => {
                if m <= 0.0 {
                    return Some(f64::INFINITY);
                }
                if budget_gb >= m {
                    return Some(f64::INFINITY);
                }
                if b <= 0.0 {
                    return None;
                }
                -(1.0 - budget_gb / m).ln() / b
            }
            CurveFamily::NapierianLog => {
                if b <= 0.0 {
                    return if m <= budget_gb {
                        Some(f64::INFINITY)
                    } else {
                        None
                    };
                }
                ((budget_gb - m) / b).exp()
            }
        };
        if x.is_finite() && x > 0.0 {
            // Verify feasibility: eval floors x for the logarithmic family,
            // so an inverted x below the floor would still overshoot the
            // budget. Reject such degenerate answers.
            if self.footprint_gb(x) <= budget_gb * (1.0 + 1e-9) + 1e-9 {
                Some(x)
            } else {
                None
            }
        } else if x == f64::INFINITY {
            Some(f64::INFINITY)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(family: CurveFamily, m: f64, b: f64) -> CalibratedModel {
        CalibratedModel::from_curve(FittedCurve { family, m, b })
    }

    #[test]
    fn plan_sample_sizes() {
        let plan = CalibrationPlan::default();
        let (a, b) = plan.sample_sizes(1000.0);
        assert_eq!(a, 50.0);
        assert_eq!(b, 100.0);
    }

    #[test]
    #[should_panic(expected = "calibration fractions")]
    fn plan_rejects_bad_fractions() {
        let plan = CalibrationPlan {
            first_fraction: 0.2,
            second_fraction: 0.1,
        };
        let _ = plan.sample_sizes(100.0);
    }

    #[test]
    fn footprint_never_negative() {
        let m = model(CurveFamily::Linear, 1.0, -10.0);
        assert_eq!(m.footprint_gb(5.0), 0.0);
        assert_eq!(m.footprint_gb(20.0), 10.0);
    }

    #[test]
    fn inverse_linear_round_trips() {
        let m = model(CurveFamily::Linear, 0.5, 2.0);
        let x = m.max_input_for_budget(12.0).unwrap();
        assert!((m.footprint_gb(x) - 12.0).abs() < 1e-9);
    }

    #[test]
    fn inverse_log_round_trips() {
        let m = model(CurveFamily::NapierianLog, 16.333, 1.79);
        let x = m.max_input_for_budget(20.0).unwrap();
        assert!((m.footprint_gb(x) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn inverse_exponential_round_trips_below_asymptote() {
        let m = model(CurveFamily::Exponential, 5.768, 4.479);
        let x = m.max_input_for_budget(3.0).unwrap();
        assert!((m.footprint_gb(x) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn exponential_budget_above_asymptote_is_unbounded() {
        let m = model(CurveFamily::Exponential, 5.768, 4.479);
        assert_eq!(m.max_input_for_budget(6.0), Some(f64::INFINITY));
    }

    #[test]
    fn zero_or_negative_budget_fits_nothing() {
        let m = model(CurveFamily::Linear, 1.0, 0.0);
        assert_eq!(m.max_input_for_budget(0.0), None);
        assert_eq!(m.max_input_for_budget(-5.0), None);
    }

    #[test]
    fn budget_below_linear_intercept_fits_nothing() {
        let m = model(CurveFamily::Linear, 1.0, 8.0);
        assert_eq!(m.max_input_for_budget(4.0), None);
    }

    #[test]
    fn flat_linear_with_small_intercept_is_unbounded() {
        let m = model(CurveFamily::Linear, 0.0, 2.0);
        assert_eq!(m.max_input_for_budget(4.0), Some(f64::INFINITY));
        assert_eq!(m.max_input_for_budget(1.0), None);
    }

    #[test]
    fn log_with_nonpositive_slope_degenerates() {
        let m = model(CurveFamily::NapierianLog, 3.0, 0.0);
        assert_eq!(m.max_input_for_budget(4.0), Some(f64::INFINITY));
        assert_eq!(m.max_input_for_budget(2.0), None);
    }
}
