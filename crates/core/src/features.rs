//! The 22 raw runtime features of Table 2.
//!
//! The paper collects these with `vmstat`, Linux `perf` and PAPI while the
//! application processes a ~100 MB sample of its input, then scales each
//! feature to `[0, 1]` and reduces the set with PCA. The features are
//! observable externally — no source access required.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of raw features (Table 2).
pub const RAW_FEATURE_COUNT: usize = 22;

/// The raw features of Table 2, in the paper's importance order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(non_camel_case_types)]
pub enum RawFeature {
    /// L1 total cache miss rate.
    L1_TCM,
    /// L1 data cache miss rate.
    L1_DCM,
    /// Percentage of memory used as cache (`vmstat`).
    Vcache,
    /// L1 cache store miss rate.
    L1_STM,
    /// Blocks sent per second (`vmstat bo`).
    Bo,
    /// L2 data cache miss rate.
    L2_TCM,
    /// L3 total cache miss rate.
    L3_TCM,
    /// Context switches per second.
    Cs,
    /// Floating-point operations per second.
    Flops,
    /// Interrupts per second.
    In,
    /// L2 data cache miss rate (PAPI `L2_DCM`).
    L2_DCM,
    /// L2 cache load miss rate.
    L2_LDM,
    /// L1 instruction cache miss rate.
    L1_ICM,
    /// Percentage of virtual memory used (`vmstat swpd`).
    Swpd,
    /// L2 cache store miss rate.
    L2_STM,
    /// Instructions per cycle.
    Ipc,
    /// L1 cache load miss rate.
    L1_LDM,
    /// L2 instruction cache miss rate.
    L2_ICM,
    /// Percentage of idle time.
    Id,
    /// Percentage of time waiting on I/O.
    Wa,
    /// Percentage spent in user time.
    Us,
    /// Percentage spent in kernel time.
    Sy,
}

impl RawFeature {
    /// All 22 features in Table 2 order (sorted by importance).
    pub const ALL: [RawFeature; RAW_FEATURE_COUNT] = [
        RawFeature::L1_TCM,
        RawFeature::L1_DCM,
        RawFeature::Vcache,
        RawFeature::L1_STM,
        RawFeature::Bo,
        RawFeature::L2_TCM,
        RawFeature::L3_TCM,
        RawFeature::Cs,
        RawFeature::Flops,
        RawFeature::In,
        RawFeature::L2_DCM,
        RawFeature::L2_LDM,
        RawFeature::L1_ICM,
        RawFeature::Swpd,
        RawFeature::L2_STM,
        RawFeature::Ipc,
        RawFeature::L1_LDM,
        RawFeature::L2_ICM,
        RawFeature::Id,
        RawFeature::Wa,
        RawFeature::Us,
        RawFeature::Sy,
    ];

    /// Index of this feature within a [`FeatureVector`].
    #[must_use]
    pub fn index(self) -> usize {
        RawFeature::ALL
            .iter()
            .position(|&f| f == self)
            .expect("feature present in ALL")
    }

    /// The abbreviation used in Table 2.
    #[must_use]
    pub fn abbr(self) -> &'static str {
        match self {
            RawFeature::L1_TCM => "L1_TCM",
            RawFeature::L1_DCM => "L1_DCM",
            RawFeature::Vcache => "vcache",
            RawFeature::L1_STM => "L1_STM",
            RawFeature::Bo => "bo",
            RawFeature::L2_TCM => "L2_TCM",
            RawFeature::L3_TCM => "L3_TCM",
            RawFeature::Cs => "cs",
            RawFeature::Flops => "FLOPs",
            RawFeature::In => "in",
            RawFeature::L2_DCM => "L2_DCM",
            RawFeature::L2_LDM => "L2_LDM",
            RawFeature::L1_ICM => "L1_ICM",
            RawFeature::Swpd => "swpd",
            RawFeature::L2_STM => "L2_STM",
            RawFeature::Ipc => "IPC",
            RawFeature::L1_LDM => "L1_LDM",
            RawFeature::L2_ICM => "L2_ICM",
            RawFeature::Id => "ID",
            RawFeature::Wa => "WA",
            RawFeature::Us => "US",
            RawFeature::Sy => "SY",
        }
    }

    /// The description used in Table 2.
    #[must_use]
    pub fn description(self) -> &'static str {
        match self {
            RawFeature::L1_TCM => "L1 total cache miss rate",
            RawFeature::L1_DCM => "L1 data cache miss rate",
            RawFeature::Vcache => "% of memory used as cache",
            RawFeature::L1_STM => "L1 cache store miss rate",
            RawFeature::Bo => "# blocks sent (/s)",
            RawFeature::L2_TCM => "L2 data cache miss rate",
            RawFeature::L3_TCM => "L2 total cache miss rate",
            RawFeature::Cs => "# context switches / s",
            RawFeature::Flops => "# floating point operations /s",
            RawFeature::In => "# interrupts / s",
            RawFeature::L2_DCM => "L3 cache total miss rate",
            RawFeature::L2_LDM => "L2 cache load miss rate",
            RawFeature::L1_ICM => "L1 instr. cache miss rate",
            RawFeature::Swpd => "% of virtual memory used",
            RawFeature::L2_STM => "L2 cache store miss rate",
            RawFeature::Ipc => "instruction per cycle",
            RawFeature::L1_LDM => "L1 cache load miss rate",
            RawFeature::L2_ICM => "L2 instr. cache miss rate",
            RawFeature::Id => "% of idle time",
            RawFeature::Wa => "% of time on IO waiting",
            RawFeature::Us => "% spent on user time",
            RawFeature::Sy => "% spent on kernel time",
        }
    }
}

impl fmt::Display for RawFeature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbr())
    }
}

/// A dense vector of the 22 raw feature values, indexed by [`RawFeature`].
///
/// # Examples
///
/// ```
/// use moe_core::features::{FeatureVector, RawFeature};
/// let mut v = FeatureVector::zeros();
/// v.set(RawFeature::L1_TCM, 0.42);
/// assert_eq!(v.get(RawFeature::L1_TCM), 0.42);
/// assert_eq!(v.as_slice().len(), 22);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureVector {
    values: Vec<f64>,
}

impl FeatureVector {
    /// All-zero feature vector.
    #[must_use]
    pub fn zeros() -> Self {
        FeatureVector {
            values: vec![0.0; RAW_FEATURE_COUNT],
        }
    }

    /// Builds a vector by evaluating `f` on each feature index `0..22`.
    #[must_use]
    pub fn from_fn(mut f: impl FnMut(usize) -> f64) -> Self {
        FeatureVector {
            values: (0..RAW_FEATURE_COUNT).map(&mut f).collect(),
        }
    }

    /// Builds a vector from a raw slice.
    ///
    /// # Panics
    ///
    /// Panics unless the slice has exactly [`RAW_FEATURE_COUNT`] entries.
    #[must_use]
    pub fn from_slice(values: &[f64]) -> Self {
        assert_eq!(
            values.len(),
            RAW_FEATURE_COUNT,
            "feature vector must have {RAW_FEATURE_COUNT} entries"
        );
        FeatureVector {
            values: values.to_vec(),
        }
    }

    /// Value of one feature.
    #[must_use]
    pub fn get(&self, feature: RawFeature) -> f64 {
        self.values[feature.index()]
    }

    /// Sets one feature.
    pub fn set(&mut self, feature: RawFeature, value: f64) {
        self.values[feature.index()] = value;
    }

    /// Borrow as a plain slice (Table 2 order).
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Consumes into the underlying `Vec`.
    #[must_use]
    pub fn into_vec(self) -> Vec<f64> {
        self.values
    }
}

impl Default for FeatureVector {
    fn default() -> Self {
        Self::zeros()
    }
}

impl From<FeatureVector> for Vec<f64> {
    fn from(v: FeatureVector) -> Vec<f64> {
        v.into_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_two_distinct_features() {
        assert_eq!(RawFeature::ALL.len(), 22);
        let set: std::collections::HashSet<_> = RawFeature::ALL.iter().collect();
        assert_eq!(set.len(), 22);
    }

    #[test]
    fn index_round_trips() {
        for (i, f) in RawFeature::ALL.iter().enumerate() {
            assert_eq!(f.index(), i);
        }
    }

    #[test]
    fn importance_order_matches_table2_head() {
        // Fig. 4b: L1_TCM, L1_DCM, vcache, L1_STM, bo are the top five.
        let top: Vec<&str> = RawFeature::ALL.iter().take(5).map(|f| f.abbr()).collect();
        assert_eq!(top, vec!["L1_TCM", "L1_DCM", "vcache", "L1_STM", "bo"]);
    }

    #[test]
    fn abbreviations_unique_and_nonempty() {
        let abbrs: std::collections::HashSet<_> =
            RawFeature::ALL.iter().map(|f| f.abbr()).collect();
        assert_eq!(abbrs.len(), 22);
        assert!(RawFeature::ALL.iter().all(|f| !f.description().is_empty()));
    }

    #[test]
    fn feature_vector_get_set() {
        let mut v = FeatureVector::zeros();
        v.set(RawFeature::Ipc, 1.5);
        v.set(RawFeature::Sy, 0.07);
        assert_eq!(v.get(RawFeature::Ipc), 1.5);
        assert_eq!(v.as_slice()[RawFeature::Sy.index()], 0.07);
    }

    #[test]
    fn from_fn_and_from_slice_agree() {
        let a = FeatureVector::from_fn(|i| i as f64 * 2.0);
        let raw: Vec<f64> = (0..22).map(|i| i as f64 * 2.0).collect();
        let b = FeatureVector::from_slice(&raw);
        assert_eq!(a, b);
        assert_eq!(Vec::<f64>::from(a), raw);
    }

    #[test]
    #[should_panic(expected = "22 entries")]
    fn from_slice_rejects_wrong_length() {
        let _ = FeatureVector::from_slice(&[1.0, 2.0]);
    }

    #[test]
    fn display_matches_abbr() {
        assert_eq!(RawFeature::Vcache.to_string(), "vcache");
    }
}
