//! Property-based tests for the mixture-of-experts core.

use mlkit::regression::{CurveFamily, FittedCurve};
use moe_core::calibration::CalibratedModel;
use moe_core::expert::{CurveExpert, ExpertId, MemoryExpert};
use moe_core::features::FeatureVector;
use moe_core::phases::{PhaseProfile, PhasedModel};
use moe_core::predictor::{MoePredictor, PredictorConfig, TrainingProgram};
use moe_core::registry::ExpertRegistry;
use moe_core::selector::{ExpertSelector, SelectorConfig};
use proptest::prelude::*;

fn cluster_features(cluster: usize) -> FeatureVector {
    FeatureVector::from_fn(|i| if i / 8 == cluster.min(2) { 0.9 } else { 0.1 })
}

fn tiny_predictor() -> MoePredictor {
    let registry = ExpertRegistry::builtin();
    let mut programs = Vec::new();
    for c in 0..3 {
        for j in 0..2 {
            let mut f = cluster_features(c);
            f.set(moe_core::features::RawFeature::Sy, 0.1 + j as f64 * 0.02);
            programs.push(TrainingProgram::new(
                format!("p{c}{j}"),
                f,
                ExpertId::from_usize(c),
            ));
        }
    }
    MoePredictor::train(registry, &programs, PredictorConfig::default()).unwrap()
}

proptest! {
    /// Footprint predictions are never negative, for any coefficients.
    #[test]
    fn footprint_never_negative(
        family_idx in 0usize..3,
        m in -100.0f64..100.0,
        b in -100.0f64..100.0,
        x in 0.0f64..1e6,
    ) {
        let model = CalibratedModel::from_curve(FittedCurve {
            family: CurveFamily::ALL[family_idx],
            m,
            b,
        });
        prop_assert!(model.footprint_gb(x) >= 0.0);
    }

    /// For increasing curves, the budget inversion round-trips: the input
    /// returned for a budget has a footprint within the budget (up to float
    /// tolerance), and slightly more input would exceed it.
    #[test]
    fn budget_inversion_round_trips(
        family_idx in 0usize..3,
        m in 0.5f64..50.0,
        b in 0.1f64..5.0,
        budget in 0.5f64..40.0,
    ) {
        let family = CurveFamily::ALL[family_idx];
        let model = CalibratedModel::from_curve(FittedCurve { family, m, b });
        if let Some(x) = model.max_input_for_budget(budget) {
            if x.is_finite() {
                let fp = model.footprint_gb(x);
                prop_assert!(fp <= budget * (1.0 + 1e-9) + 1e-9,
                    "footprint {fp} exceeds budget {budget} at x={x}");
                // A 1 % larger allocation must not still fit strictly
                // under the budget for strictly increasing curves.
                let fp_more = model.footprint_gb(x * 1.01);
                prop_assert!(fp_more >= fp - 1e-9);
            }
        }
    }

    /// Calibrating a curve expert on two exact points of its own family
    /// reproduces the curve.
    #[test]
    fn curve_expert_calibration_is_exact(
        family_idx in 0usize..3,
        m in 0.5f64..30.0,
        b in 0.2f64..5.0,
        x1 in 0.05f64..1.0,
    ) {
        let family = CurveFamily::ALL[family_idx];
        let truth = FittedCurve { family, m, b };
        let expert = CurveExpert::new(family);
        let x2 = x1 * 2.0;
        let model = expert
            .calibrate((x1, truth.eval(x1)), (x2, truth.eval(x2)))
            .unwrap();
        for probe in [x1, x2, x2 * 10.0, x2 * 100.0] {
            let want = truth.eval(probe).max(0.0);
            let got = model.footprint_gb(probe);
            prop_assert!((want - got).abs() <= 1e-4 * (1.0 + want),
                "family {family:?} at x={probe}: want {want}, got {got}");
        }
    }

    /// The selector classifies its own exemplars correctly with k = 1 and
    /// never reports a negative distance.
    #[test]
    fn selector_memorises_exemplars(seed_vals in proptest::collection::vec(0.0f64..1.0, 6)) {
        let exemplars: Vec<(FeatureVector, ExpertId)> = seed_vals
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                // Spread exemplars so they are distinct in feature space.
                let fv = FeatureVector::from_fn(|d| v + (i * 23 + d) as f64);
                (fv, ExpertId::from_usize(i % 3))
            })
            .collect();
        let selector = ExpertSelector::train(&exemplars, SelectorConfig::default()).unwrap();
        for (f, id) in &exemplars {
            let s = selector.select(f).unwrap();
            prop_assert_eq!(s.expert, *id);
            prop_assert!(s.distance >= 0.0);
            prop_assert!(s.distance < 1e-6);
        }
    }

    /// A phased model's peak footprint dominates every member phase at
    /// every probe, and its budget answer is feasible for all phases.
    #[test]
    fn phased_model_peak_dominates_members(
        m1 in 0.2f64..3.0,
        b1 in 0.1f64..2.0,
        m2 in 6.0f64..25.0,
        b2 in 0.5f64..2.5,
        budget in 8.0f64..30.0,
    ) {
        let predictor = tiny_predictor();
        let lin = FittedCurve { family: CurveFamily::Linear, m: m1, b: b1 };
        let log = FittedCurve { family: CurveFamily::NapierianLog, m: m2, b: b2 };
        let profiles = vec![
            PhaseProfile {
                name: "lin".into(),
                features: cluster_features(0),
                calibration: [(1.0, lin.eval(1.0)), (2.0, lin.eval(2.0))],
            },
            PhaseProfile {
                name: "log".into(),
                features: cluster_features(2),
                calibration: [(1.0, log.eval(1.0)), (2.0, log.eval(2.0))],
            },
        ];
        let model = PhasedModel::from_profiles(&predictor, &profiles).unwrap();
        for probe in [0.5, 2.0, 10.0, 50.0] {
            let peak = model.peak_footprint_gb(probe);
            for phase in model.phases() {
                prop_assert!(peak >= phase.model.footprint_gb(probe) - 1e-9);
            }
        }
        if let Some(x) = model.max_input_for_budget(budget) {
            if x.is_finite() {
                prop_assert!(model.peak_footprint_gb(x) <= budget * 1.01 + 1e-9);
            }
        }
    }
}
